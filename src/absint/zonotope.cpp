#include "absint/zonotope.hpp"

#include "absint/box_domain.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/simd.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"

namespace dpv::absint {

Zonotope Zonotope::from_box(const Box& box) {
  Zonotope z;
  z.center_.resize(box.size());
  for (std::size_t i = 0; i < box.size(); ++i) {
    z.center_[i] = box[i].midpoint();
    const double radius = 0.5 * box[i].width();
    if (radius > 0.0) {
      std::vector<double> gen(box.size(), 0.0);
      gen[i] = radius;
      z.generators_.push_back(std::move(gen));
    }
  }
  return z;
}

Box Zonotope::to_box() const {
  // Generator-major accumulation: each generator row is contiguous, so
  // the |.| sums stream instead of striding column-wise per dimension.
  const std::size_t n = center_.size();
  std::vector<double> radius(n, 0.0);
  for (const auto& gen : generators_)
    simd::accumulate_abs(gen.data(), radius.data(), n);
  Box box(n);
  for (std::size_t i = 0; i < n; ++i)
    box[i] = Interval(center_[i] - radius[i], center_[i] + radius[i]);
  return box;
}

double Zonotope::total_width() const { return box_total_width(to_box()); }

Zonotope Zonotope::affine(const std::vector<std::vector<double>>& weight,
                          const std::vector<double>& bias) const {
  const std::size_t out_n = weight.size();
  check(out_n == bias.size(), "Zonotope::affine: weight/bias mismatch");
  Zonotope out;
  out.center_.assign(out_n, 0.0);
  const std::size_t in_n = center_.size();
  for (std::size_t r = 0; r < out_n; ++r) {
    check(weight[r].size() == in_n, "Zonotope::affine: weight width mismatch");
    out.center_[r] = bias[r] + simd::dot(weight[r].data(), center_.data(), in_n);
  }
  out.generators_.reserve(generators_.size());
  for (const auto& gen : generators_) {
    std::vector<double> mapped(out_n);
    for (std::size_t r = 0; r < out_n; ++r)
      mapped[r] = simd::dot(weight[r].data(), gen.data(), in_n);
    out.generators_.push_back(std::move(mapped));
  }
  return out;
}

Zonotope Zonotope::scale_shift(const std::vector<double>& scale,
                               const std::vector<double>& shift) const {
  check(scale.size() == center_.size() && shift.size() == center_.size(),
        "Zonotope::scale_shift: dimension mismatch");
  Zonotope out = *this;
  simd::hadamard_fma(out.center_.data(), scale.data(), shift.data(), center_.size());
  for (auto& gen : out.generators_)
    simd::hadamard(gen.data(), scale.data(), gen.size());
  return out;
}

namespace {

/// Intersection of two sound enclosures of the same values: non-empty
/// up to rounding, and the guard keeps the result well-formed either
/// way. Shared by the transformer clamp and the trace loop so the
/// chord-slope bounds and the trace boxes can never diverge.
Interval guarded_intersection(const Interval& a, const Interval& b) {
  const double lo = std::max(a.lo, b.lo);
  const double hi = std::min(a.hi, b.hi);
  return Interval(std::min(lo, hi), std::max(lo, hi));
}

/// Per-dimension pre-activation bounds: the zonotope's own
/// concretization, intersected with externally proven `clamp` bounds
/// when supplied (sound because every concrete value lies in both).
Interval effective_bounds(const Box& own, const Box* clamp, std::size_t i) {
  if (clamp == nullptr) return own[i];
  return guarded_intersection(own[i], (*clamp)[i]);
}

}  // namespace

Zonotope Zonotope::relu(const Box* clamp) const {
  // ReLU is LeakyReLU at alpha = 0: one chord transformer serves both
  // (the leaky_relu formulas below reduce exactly to the DeepZ ReLU
  // lambda = hi/(hi-lo), mu = -lambda*lo/2 at alpha = 0).
  return leaky_relu(0.0, clamp);
}

Zonotope Zonotope::leaky_relu(double alpha, const Box* clamp) const {
  check(alpha >= 0.0 && alpha < 1.0,
        "Zonotope::leaky_relu: alpha must be in [0, 1)");
  if (clamp != nullptr)
    check(clamp->size() == center_.size(),
          "Zonotope::leaky_relu: clamp arity mismatch");
  const Box bounds = to_box();
  const std::size_t n = center_.size();
  Zonotope out = *this;
  // Fresh-noise magnitude per unstable dimension (half the chord's
  // maximal deviation from f, attained at the kink x = 0).
  std::vector<double> fresh(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Interval iv = effective_bounds(bounds, clamp, i);
    const double lo = iv.lo;
    const double hi = iv.hi;
    if (lo >= 0.0) continue;  // identity piece
    if (hi <= 0.0) {          // alpha piece: exact linear map
      out.center_[i] *= alpha;
      for (auto& gen : out.generators_) gen[i] *= alpha;
      continue;
    }
    // Unstable: f(x) = max(x, alpha*x) is convex, so it lies between
    // the chord c(x) = s*x + (alpha - s)*lo through (lo, alpha*lo) and
    // (hi, hi), and c shifted down by its kink deviation
    // d0 = c(0) - f(0) = (alpha - s)*lo = -lo*hi*(1-alpha)/(hi-lo).
    // Midline plus a fresh symbol of radius d0/2.
    const double s = (hi - alpha * lo) / (hi - lo);
    const double d0 = (alpha - s) * lo;
    out.center_[i] = s * out.center_[i] + (alpha - s) * lo - 0.5 * d0;
    for (auto& gen : out.generators_) gen[i] *= s;
    fresh[i] = 0.5 * d0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (fresh[i] == 0.0) continue;
    std::vector<double> gen(n, 0.0);
    gen[i] = fresh[i];
    out.generators_.push_back(std::move(gen));
  }
  return out;
}

Zonotope Zonotope::reduce(std::size_t max_generators) const {
  if (max_generators == 0 || generators_.size() <= max_generators) return *this;
  const std::size_t n = center_.size();
  // Keep the heaviest generators outright; the rest are boxed. Reserve
  // room for up to one axis generator per dimension so the result stays
  // within the budget whenever max_generators > dimensions().
  const std::size_t keep = max_generators > n ? max_generators - n : 0;

  std::vector<std::size_t> order(generators_.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::vector<double> mass(generators_.size(), 0.0);
  for (std::size_t k = 0; k < generators_.size(); ++k)
    mass[k] = simd::sum_abs(generators_[k].data(), n);
  // Heaviest first; index tie-break keeps the reduction deterministic.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (mass[a] != mass[b]) return mass[a] > mass[b];
    return a < b;
  });

  Zonotope out;
  out.center_ = center_;
  out.generators_.reserve(keep + n);
  for (std::size_t k = 0; k < keep; ++k) out.generators_.push_back(generators_[order[k]]);
  std::vector<double> residual(n, 0.0);
  for (std::size_t k = keep; k < order.size(); ++k)
    simd::accumulate_abs(generators_[order[k]].data(), residual.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    if (residual[i] == 0.0) continue;
    std::vector<double> gen(n, 0.0);
    gen[i] = residual[i];
    out.generators_.push_back(std::move(gen));
  }
  return out;
}

namespace {

/// The zonotope transformer of one layer (the shared step of range and
/// trace propagation). `pre_clamp`, when non-null, carries externally
/// proven bounds on the layer's *input* — trace propagation feeds the
/// interval-intersected box of the previous layer back in, so the
/// (Leaky)ReLU chord slope is chosen from the clamped bounds instead of
/// the zonotope's possibly looser own concretization.
Zonotope zonotope_step(const nn::Layer& layer, Zonotope z, const Box* pre_clamp) {
  switch (layer.kind()) {
    case nn::LayerKind::kDense: {
      const auto& d = static_cast<const nn::Dense&>(layer);
      const std::size_t out_n = d.output_shape().dim(0);
      const std::size_t in_n = d.input_shape().dim(0);
      std::vector<std::vector<double>> weight(out_n, std::vector<double>(in_n));
      std::vector<double> bias(out_n);
      for (std::size_t r = 0; r < out_n; ++r) {
        bias[r] = d.bias()[r];
        for (std::size_t c = 0; c < in_n; ++c) weight[r][c] = d.weight().at2(r, c);
      }
      return z.affine(weight, bias);
    }
    case nn::LayerKind::kReLU:
      return z.relu(pre_clamp);
    case nn::LayerKind::kLeakyReLU:
      return z.leaky_relu(static_cast<const nn::LeakyReLU&>(layer).alpha(), pre_clamp);
    case nn::LayerKind::kBatchNorm: {
      const auto& bn = static_cast<const nn::BatchNorm&>(layer);
      const std::size_t n = bn.input_shape().dim(0);
      std::vector<double> scale(n), shift(n);
      for (std::size_t f = 0; f < n; ++f) {
        scale[f] = bn.effective_scale(f);
        shift[f] = bn.effective_shift(f);
      }
      return z.scale_shift(scale, shift);
    }
    case nn::LayerKind::kFlatten:
      return z;  // reshape only
    default:
      throw ContractViolation(
          "propagate_zonotope_range: unsupported layer kind '" +
          nn::layer_kind_name(layer.kind()) +
          "' (zonotopes cover verified tails: dense/relu/leakyrelu/batchnorm)");
  }
}

}  // namespace

Zonotope propagate_zonotope_range(const nn::Network& net, Zonotope z, std::size_t from_layer,
                                  std::size_t to_layer, std::size_t max_generators) {
  check(from_layer <= to_layer && to_layer <= net.layer_count(),
        "propagate_zonotope_range: invalid layer range");
  for (std::size_t i = from_layer; i < to_layer; ++i) {
    z = zonotope_step(net.layer(i), std::move(z), nullptr);
    if (max_generators > 0) z = z.reduce(max_generators);
  }
  return z;
}

bool zonotope_supported(const nn::Network& net, std::size_t from_layer, std::size_t to_layer) {
  check(from_layer <= to_layer && to_layer <= net.layer_count(),
        "zonotope_supported: invalid layer range");
  for (std::size_t i = from_layer; i < to_layer; ++i) {
    switch (net.layer(i).kind()) {
      case nn::LayerKind::kDense:
      case nn::LayerKind::kReLU:
      case nn::LayerKind::kLeakyReLU:
      case nn::LayerKind::kBatchNorm:
      case nn::LayerKind::kFlatten:
        break;
      default:
        return false;
    }
  }
  return true;
}

std::vector<Box> propagate_zonotope_trace(const nn::Network& net, const Box& input_box,
                                          std::size_t from_layer, std::size_t to_layer,
                                          std::size_t max_generators) {
  check(from_layer <= to_layer && to_layer <= net.layer_count(),
        "propagate_zonotope_trace: invalid layer range");
  std::vector<Box> trace;
  trace.reserve(to_layer - from_layer);
  Zonotope z = Zonotope::from_box(input_box);
  // The DeepZ ReLU transformer preserves correlations but its box can be
  // locally looser than plain intervals (the midline form dips below 0).
  // Running interval propagation alongside — seeded each layer from the
  // previous *intersected* box — makes every trace entry at least as
  // tight as pure interval propagation while keeping the zonotope's
  // correlation wins. The intersected box also feeds *back* into the
  // transformer as the pre-activation clamp, so the (Leaky)ReLU chord
  // slope is chosen from the tightened bounds.
  Box interval_box = input_box;
  for (std::size_t i = from_layer; i < to_layer; ++i) {
    z = zonotope_step(net.layer(i), std::move(z), &interval_box);
    if (max_generators > 0) z = z.reduce(max_generators);
    interval_box = propagate_box(net.layer(i), interval_box);
    const Box zono_box = z.to_box();
    check(zono_box.size() == interval_box.size(),
          "propagate_zonotope_trace: arity mismatch between domains");
    for (std::size_t d = 0; d < interval_box.size(); ++d)
      interval_box[d] = guarded_intersection(interval_box[d], zono_box[d]);
    trace.push_back(interval_box);
  }
  return trace;
}

}  // namespace dpv::absint
