// Box (interval) propagation through network layers.
//
// Sound over-approximation: for any input x with x_i in in_box[i], every
// intermediate activation lies in the propagated box. Supports every
// layer kind in the library, so the same engine serves both the
// "verify from the raw input box" baseline (which the paper's footnote 1
// dismisses as hopeless) and the big-M bound pre-pass over the verified
// tail.
#pragma once

#include "absint/interval.hpp"
#include "nn/network.hpp"

namespace dpv::absint {

/// Propagates a box through one layer.
Box propagate_box(const nn::Layer& layer, const Box& in);

/// Propagates through layers [from_layer, to_layer) of `net`.
Box propagate_box_range(const nn::Network& net, Box box, std::size_t from_layer,
                        std::size_t to_layer);

/// Boxes after every layer in [from_layer, to_layer): result[k] is the box
/// after layer from_layer + k. Used by the MILP encoder for big-M bounds.
std::vector<Box> propagate_box_trace(const nn::Network& net, const Box& box,
                                     std::size_t from_layer, std::size_t to_layer);

/// Uniform box [lo, hi]^n.
Box uniform_box(std::size_t dimensions, double lo, double hi);

}  // namespace dpv::absint
