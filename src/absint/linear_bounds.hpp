// Symbolic linear-bounds domain (DeepPoly-style).
//
// Every neuron of the current layer carries a pair of linear forms in the
// *layer-l input variables* x:
//     lower_i(x) <= n_i <= upper_i(x)      for all x in the input box,
// composed through affine layers exactly and through unstable ReLUs with
// the standard triangle bounds (upper: the convex envelope chord; lower:
// the 0/identity choice with the smaller area). Concretization evaluates
// each form over the box and intersects with plain interval propagation,
// so the resulting bounds are never looser than the box domain — they
// retain the inter-neuron correlations boxes throw away.
//
// This is the reproduction's stand-in for the symbolic-propagation
// analyzers the paper cites ([19], [21]) and serves as the strongest
// bound pre-pass of the MILP encoder (verify::BoundMethod::kSymbolic).
#pragma once

#include <cstddef>
#include <vector>

#include "absint/interval.hpp"
#include "nn/network.hpp"

namespace dpv::absint {

/// One linear form coeffs·x + constant over the layer-l inputs.
struct LinearForm {
  std::vector<double> coeffs;
  double constant = 0.0;

  /// Minimum of the form over the box.
  double min_over(const Box& box) const;
  /// Maximum of the form over the box.
  double max_over(const Box& box) const;
};

/// Symbolic state: per-neuron lower/upper forms plus concrete bounds.
class LinearBounds {
 public:
  /// Identity forms over the input box (n_i = x_i).
  static LinearBounds from_box(const Box& box);

  std::size_t dimensions() const { return lower_.size(); }
  const Box& concrete() const { return concrete_; }
  const LinearForm& lower_form(std::size_t i) const { return lower_[i]; }
  const LinearForm& upper_form(std::size_t i) const { return upper_[i]; }

  /// y = W x + b (exact composition of forms).
  LinearBounds affine(const std::vector<std::vector<double>>& weight,
                      const std::vector<double>& bias) const;

  /// Per-dimension scale + shift (BatchNorm inference form).
  LinearBounds scale_shift(const std::vector<double>& scale,
                           const std::vector<double>& shift) const;

  /// ReLU transformer (DeepPoly triangle bounds).
  LinearBounds relu() const;

  /// LeakyReLU transformer: f(x) = max(x, alpha*x) is convex for
  /// alpha in (0, 1), so the chord is a valid upper form and either
  /// linear piece a valid lower form.
  LinearBounds leaky_relu(double alpha) const;

  /// Intersects the concrete bounds with an externally-known sound box
  /// (e.g. interval propagation); sharpens later ReLU phase decisions.
  void clamp_concrete(const Box& box);

 private:
  LinearBounds() = default;
  void refresh_concrete();

  Box input_box_;
  std::vector<LinearForm> lower_;
  std::vector<LinearForm> upper_;
  Box concrete_;
};

/// Concrete per-layer bounds for layers [from_layer, to_layer) of `net`
/// starting from `input_box` at layer from_layer. result[k] is the box
/// after layer from_layer + k, guaranteed at least as tight as interval
/// propagation. Supports dense / relu / batchnorm / flatten tails.
std::vector<Box> symbolic_bounds_trace(const nn::Network& net, const Box& input_box,
                                       std::size_t from_layer, std::size_t to_layer);

}  // namespace dpv::absint
