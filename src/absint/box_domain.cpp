#include "absint/box_domain.hpp"

#include <cmath>

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool2d.hpp"

namespace dpv::absint {

namespace {

Box dense_box(const nn::Dense& layer, const Box& in) {
  const std::size_t out_n = layer.output_shape().numel();
  const std::size_t in_n = layer.input_shape().numel();
  Box out(out_n);
  for (std::size_t r = 0; r < out_n; ++r) {
    Interval acc(layer.bias()[r], layer.bias()[r]);
    for (std::size_t c = 0; c < in_n; ++c) acc = acc + scale(in[c], layer.weight().at2(r, c));
    out[r] = acc;
  }
  return out;
}

Box batchnorm_box(const nn::BatchNorm& layer, const Box& in) {
  Box out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = shift(scale(in[i], layer.effective_scale(i)), layer.effective_shift(i));
  return out;
}

Box conv_box(const nn::Conv2D& layer, const Box& in) {
  // Interval version of Conv2D::forward; zero padding contributes the
  // degenerate interval [0, 0].
  const Shape in_shape = layer.input_shape();
  const Shape out_shape = layer.output_shape();
  const std::size_t in_ch = in_shape.dim(0), in_h = in_shape.dim(1), in_w = in_shape.dim(2);
  const std::size_t out_ch = out_shape.dim(0), out_h = out_shape.dim(1),
                    out_w = out_shape.dim(2);
  const std::size_t k = layer.kernel(), k2 = k * k;
  Box out(out_shape.numel());
  for (std::size_t oc = 0; oc < out_ch; ++oc)
    for (std::size_t orow = 0; orow < out_h; ++orow)
      for (std::size_t ocol = 0; ocol < out_w; ++ocol) {
        Interval acc(layer.bias()[oc], layer.bias()[oc]);
        const long base_r =
            static_cast<long>(orow * layer.stride()) - static_cast<long>(layer.padding());
        const long base_c =
            static_cast<long>(ocol * layer.stride()) - static_cast<long>(layer.padding());
        for (std::size_t ic = 0; ic < in_ch; ++ic) {
          const std::size_t wbase = (oc * in_ch + ic) * k2;
          for (std::size_t kr = 0; kr < k; ++kr)
            for (std::size_t kc = 0; kc < k; ++kc) {
              const long r = base_r + static_cast<long>(kr);
              const long c = base_c + static_cast<long>(kc);
              if (r < 0 || c < 0 || r >= static_cast<long>(in_h) || c >= static_cast<long>(in_w))
                continue;
              const std::size_t in_idx =
                  (ic * in_h + static_cast<std::size_t>(r)) * in_w + static_cast<std::size_t>(c);
              acc = acc + scale(in[in_idx], layer.weight()[wbase + kr * k + kc]);
            }
        }
        out[(oc * out_h + orow) * out_w + ocol] = acc;
      }
  return out;
}

Box maxpool_box(const nn::MaxPool2D& layer, const Box& in) {
  const Shape in_shape = layer.input_shape();
  const Shape out_shape = layer.output_shape();
  const std::size_t ch = in_shape.dim(0), in_h = in_shape.dim(1), in_w = in_shape.dim(2);
  const std::size_t out_h = out_shape.dim(1), out_w = out_shape.dim(2);
  const std::size_t win = layer.window();
  Box out(out_shape.numel());
  for (std::size_t c = 0; c < ch; ++c)
    for (std::size_t orow = 0; orow < out_h; ++orow)
      for (std::size_t ocol = 0; ocol < out_w; ++ocol) {
        Interval acc;
        bool first = true;
        for (std::size_t wr = 0; wr < win; ++wr)
          for (std::size_t wc = 0; wc < win; ++wc) {
            const std::size_t idx =
                (c * in_h + orow * win + wr) * in_w + ocol * win + wc;
            if (first) {
              acc = in[idx];
              first = false;
            } else {
              // max of intervals: [max(lo), max(hi)]
              acc = Interval(std::max(acc.lo, in[idx].lo), std::max(acc.hi, in[idx].hi));
            }
          }
        out[(c * out_h + orow) * out_w + ocol] = acc;
      }
  return out;
}

Box avgpool_box(const nn::AvgPool2D& layer, const Box& in) {
  const Shape in_shape = layer.input_shape();
  const Shape out_shape = layer.output_shape();
  const std::size_t ch = in_shape.dim(0), in_h = in_shape.dim(1), in_w = in_shape.dim(2);
  const std::size_t out_h = out_shape.dim(1), out_w = out_shape.dim(2);
  const std::size_t win = layer.window();
  const double inv_area = 1.0 / static_cast<double>(win * win);
  Box out(out_shape.numel());
  for (std::size_t c = 0; c < ch; ++c)
    for (std::size_t orow = 0; orow < out_h; ++orow)
      for (std::size_t ocol = 0; ocol < out_w; ++ocol) {
        Interval acc(0.0, 0.0);
        for (std::size_t wr = 0; wr < win; ++wr)
          for (std::size_t wc = 0; wc < win; ++wc)
            acc = acc + in[(c * in_h + orow * win + wr) * in_w + ocol * win + wc];
        out[(c * out_h + orow) * out_w + ocol] = scale(acc, inv_area);
      }
  return out;
}

}  // namespace

Box propagate_box(const nn::Layer& layer, const Box& in) {
  check(in.size() == layer.input_shape().numel(),
        "propagate_box: box dimension does not match layer input");
  switch (layer.kind()) {
    case nn::LayerKind::kDense:
      return dense_box(static_cast<const nn::Dense&>(layer), in);
    case nn::LayerKind::kReLU: {
      Box out(in.size());
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = relu(in[i]);
      return out;
    }
    case nn::LayerKind::kLeakyReLU: {
      const double alpha = static_cast<const nn::LeakyReLU&>(layer).alpha();
      Box out(in.size());
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = monotone_image(in[i],
                                [alpha](double v) { return v > 0.0 ? v : alpha * v; });
      return out;
    }
    case nn::LayerKind::kSigmoid: {
      Box out(in.size());
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = monotone_image(in[i], [](double v) { return 1.0 / (1.0 + std::exp(-v)); });
      return out;
    }
    case nn::LayerKind::kTanh: {
      Box out(in.size());
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = monotone_image(in[i], [](double v) { return std::tanh(v); });
      return out;
    }
    case nn::LayerKind::kBatchNorm:
      return batchnorm_box(static_cast<const nn::BatchNorm&>(layer), in);
    case nn::LayerKind::kConv2D:
      return conv_box(static_cast<const nn::Conv2D&>(layer), in);
    case nn::LayerKind::kMaxPool2D:
      return maxpool_box(static_cast<const nn::MaxPool2D&>(layer), in);
    case nn::LayerKind::kAvgPool2D:
      return avgpool_box(static_cast<const nn::AvgPool2D&>(layer), in);
    case nn::LayerKind::kFlatten:
      return in;  // reshape only
  }
  throw InternalError("propagate_box: unknown layer kind");
}

Box propagate_box_range(const nn::Network& net, Box box, std::size_t from_layer,
                        std::size_t to_layer) {
  check(from_layer <= to_layer && to_layer <= net.layer_count(),
        "propagate_box_range: invalid layer range");
  for (std::size_t i = from_layer; i < to_layer; ++i) box = propagate_box(net.layer(i), box);
  return box;
}

std::vector<Box> propagate_box_trace(const nn::Network& net, const Box& box,
                                     std::size_t from_layer, std::size_t to_layer) {
  check(from_layer <= to_layer && to_layer <= net.layer_count(),
        "propagate_box_trace: invalid layer range");
  std::vector<Box> trace;
  trace.reserve(to_layer - from_layer);
  Box current = box;
  for (std::size_t i = from_layer; i < to_layer; ++i) {
    current = propagate_box(net.layer(i), current);
    trace.push_back(current);
  }
  return trace;
}

Box uniform_box(std::size_t dimensions, double lo, double hi) {
  return Box(dimensions, Interval(lo, hi));
}

}  // namespace dpv::absint
