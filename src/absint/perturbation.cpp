#include "absint/perturbation.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/diff.hpp"
#include "nn/pool2d.hpp"

namespace dpv::absint {

namespace {

/// Largest magnitude a coordinate can take inside `box[i]`.
double magnitude(const Interval& iv) {
  return std::max(std::fabs(iv.lo), std::fabs(iv.hi));
}

std::vector<double> dense_step(const nn::Dense& base, const nn::Dense& upd,
                               const std::vector<double>& r_in, const Box& in_box) {
  const Tensor& wu = upd.weight();
  const Tensor& wb = base.weight();
  const std::size_t out = wu.shape().dim(0);
  const std::size_t in = wu.shape().dim(1);
  std::vector<double> r_out(out, 0.0);
  for (std::size_t i = 0; i < out; ++i) {
    double r = std::fabs(upd.bias()[i] - base.bias()[i]);
    for (std::size_t j = 0; j < in; ++j) {
      const double wij = wu[i * in + j];
      r += std::fabs(wij) * r_in[j];
      r += std::fabs(wij - wb[i * in + j]) * magnitude(in_box[j]);
    }
    r_out[i] = r;
  }
  return r_out;
}

std::vector<double> batchnorm_step(const nn::BatchNorm& base, const nn::BatchNorm& upd,
                                   const std::vector<double>& r_in, const Box& in_box) {
  const std::size_t n = r_in.size();
  std::vector<double> r_out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double su = upd.effective_scale(i);
    const double ds = std::fabs(su - base.effective_scale(i));
    const double dh = std::fabs(upd.effective_shift(i) - base.effective_shift(i));
    r_out[i] = std::fabs(su) * r_in[i] + ds * magnitude(in_box[i]) + dh;
  }
  return r_out;
}

std::vector<double> conv_step(const nn::Conv2D& base, const nn::Conv2D& upd,
                              const std::vector<double>& r_in, const Box& in_box) {
  // Conservative: every output cell of channel o reads at most one
  // kernel's worth of inputs, each bounded by the worst input radius
  // and magnitude (padding cells contribute zero to both sums).
  double r_max = 0.0;
  for (double r : r_in) r_max = std::max(r_max, r);
  double mag_max = 0.0;
  for (const Interval& iv : in_box) mag_max = std::max(mag_max, magnitude(iv));

  const Tensor& wu = upd.weight();
  const Tensor& wb = base.weight();
  const std::size_t out_c = wu.shape().dim(0);
  const std::size_t per_channel = wu.numel() / out_c;
  const Shape out_shape = upd.output_shape();
  const std::size_t plane = out_shape.numel() / out_c;
  std::vector<double> r_out(out_shape.numel(), 0.0);
  for (std::size_t o = 0; o < out_c; ++o) {
    double abs_sum = 0.0, delta_sum = 0.0;
    for (std::size_t k = 0; k < per_channel; ++k) {
      abs_sum += std::fabs(wu[o * per_channel + k]);
      delta_sum += std::fabs(wu[o * per_channel + k] - wb[o * per_channel + k]);
    }
    const double r = abs_sum * r_max + delta_sum * mag_max +
                     std::fabs(upd.bias()[o] - base.bias()[o]);
    for (std::size_t p = 0; p < plane; ++p) r_out[o * plane + p] = r;
  }
  return r_out;
}

std::vector<double> pool_step(const nn::Layer& layer, const std::vector<double>& r_in,
                              bool average) {
  // Non-overlapping windows (stride == window): max pooling is
  // 1-Lipschitz per window in ∞-norm; average pooling averages radii.
  const auto& pool = static_cast<const nn::Pool2D&>(layer);
  const Shape in_shape = layer.input_shape();
  const Shape out_shape = layer.output_shape();
  const std::size_t channels = in_shape.dim(0);
  const std::size_t ih = in_shape.dim(1), iw = in_shape.dim(2);
  const std::size_t oh = out_shape.dim(1), ow = out_shape.dim(2);
  const std::size_t win = pool.window();
  std::vector<double> r_out(out_shape.numel(), 0.0);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t r = 0; r < oh; ++r) {
      for (std::size_t col = 0; col < ow; ++col) {
        double acc = 0.0;
        std::size_t cells = 0;
        for (std::size_t dr = 0; dr < win; ++dr) {
          for (std::size_t dc = 0; dc < win; ++dc) {
            const std::size_t rr = r * win + dr, cc = col * win + dc;
            if (rr >= ih || cc >= iw) continue;
            const double v = r_in[(c * ih + rr) * iw + cc];
            acc = average ? acc + v : std::max(acc, v);
            ++cells;
          }
        }
        r_out[(c * oh + r) * ow + col] = average && cells > 0 ? acc / cells : acc;
      }
    }
  }
  return r_out;
}

}  // namespace

PerturbationTrace perturbation_radii(const nn::Network& base, const nn::Network& updated,
                                     const std::vector<Box>& base_trace,
                                     const Box& base_input, const Box& new_input,
                                     std::size_t from_layer) {
  PerturbationTrace trace;
  const nn::NetworkDiff diff = nn::diff_networks(base, updated);
  if (!diff.structurally_identical) return trace;
  const std::size_t count = base.layer_count();
  check(from_layer <= count, "perturbation_radii: from_layer out of range");
  check(base_trace.size() == count - from_layer,
        "perturbation_radii: base trace length mismatch");
  check(base_input.size() == new_input.size(),
        "perturbation_radii: input box dimension mismatch");

  // Coupling excess at the input: x' vs clamp(x', base box).
  std::vector<double> r(base_input.size(), 0.0);
  for (std::size_t j = 0; j < base_input.size(); ++j)
    r[j] = std::max(0.0, std::max(new_input[j].hi - base_input[j].hi,
                                  base_input[j].lo - new_input[j].lo));

  trace.supported = true;
  trace.radii.reserve(count - from_layer);
  const Box* in_box = &base_input;
  for (std::size_t l = from_layer; l < count; ++l) {
    const nn::Layer& lb = base.layer(l);
    const nn::Layer& lu = updated.layer(l);
    switch (lb.kind()) {
      case nn::LayerKind::kDense:
        r = dense_step(static_cast<const nn::Dense&>(lb),
                       static_cast<const nn::Dense&>(lu), r, *in_box);
        break;
      case nn::LayerKind::kBatchNorm:
        r = batchnorm_step(static_cast<const nn::BatchNorm&>(lb),
                           static_cast<const nn::BatchNorm&>(lu), r, *in_box);
        break;
      case nn::LayerKind::kConv2D:
        r = conv_step(static_cast<const nn::Conv2D&>(lb),
                      static_cast<const nn::Conv2D&>(lu), r, *in_box);
        break;
      case nn::LayerKind::kMaxPool2D:
        r = pool_step(lb, r, /*average=*/false);
        break;
      case nn::LayerKind::kAvgPool2D:
        r = pool_step(lb, r, /*average=*/true);
        break;
      case nn::LayerKind::kReLU:
      case nn::LayerKind::kLeakyReLU:
      case nn::LayerKind::kSigmoid:
      case nn::LayerKind::kTanh:
      case nn::LayerKind::kFlatten:
        break;  // 1-Lipschitz elementwise (or identity): radii carry over
    }
    for (double v : r) trace.max_radius = std::max(trace.max_radius, v);
    trace.radii.push_back(r);
    in_box = &base_trace[l - from_layer];
  }
  return trace;
}

Box widen_box(const Box& box, const std::vector<double>& radii) {
  check(box.size() == radii.size(), "widen_box: dimension mismatch");
  Box out;
  out.reserve(box.size());
  for (std::size_t i = 0; i < box.size(); ++i)
    out.emplace_back(box[i].lo - radii[i], box[i].hi + radii[i]);
  return out;
}

}  // namespace dpv::absint
