#include "absint/linear_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "absint/box_domain.hpp"
#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"

namespace dpv::absint {

double LinearForm::min_over(const Box& box) const {
  internal_check(coeffs.size() == box.size(), "LinearForm: box dimension mismatch");
  double acc = constant;
  for (std::size_t k = 0; k < coeffs.size(); ++k)
    acc += coeffs[k] >= 0.0 ? coeffs[k] * box[k].lo : coeffs[k] * box[k].hi;
  return acc;
}

double LinearForm::max_over(const Box& box) const {
  internal_check(coeffs.size() == box.size(), "LinearForm: box dimension mismatch");
  double acc = constant;
  for (std::size_t k = 0; k < coeffs.size(); ++k)
    acc += coeffs[k] >= 0.0 ? coeffs[k] * box[k].hi : coeffs[k] * box[k].lo;
  return acc;
}

LinearBounds LinearBounds::from_box(const Box& box) {
  LinearBounds state;
  state.input_box_ = box;
  const std::size_t n = box.size();
  state.lower_.resize(n);
  state.upper_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    state.lower_[i].coeffs.assign(n, 0.0);
    state.lower_[i].coeffs[i] = 1.0;
    state.upper_[i] = state.lower_[i];
  }
  state.concrete_ = box;
  return state;
}

void LinearBounds::refresh_concrete() {
  concrete_.resize(lower_.size());
  for (std::size_t i = 0; i < lower_.size(); ++i) {
    const double lo = lower_[i].min_over(input_box_);
    const double hi = upper_[i].max_over(input_box_);
    concrete_[i] = Interval(std::min(lo, hi), std::max(lo, hi));
  }
}

LinearBounds LinearBounds::affine(const std::vector<std::vector<double>>& weight,
                                  const std::vector<double>& bias) const {
  const std::size_t out_n = weight.size();
  check(out_n == bias.size(), "LinearBounds::affine: weight/bias mismatch");
  const std::size_t in_n = lower_.size();
  const std::size_t x_n = input_box_.size();

  LinearBounds out;
  out.input_box_ = input_box_;
  out.lower_.resize(out_n);
  out.upper_.resize(out_n);
  for (std::size_t r = 0; r < out_n; ++r) {
    check(weight[r].size() == in_n, "LinearBounds::affine: weight width mismatch");
    LinearForm lo{std::vector<double>(x_n, 0.0), bias[r]};
    LinearForm hi{std::vector<double>(x_n, 0.0), bias[r]};
    for (std::size_t c = 0; c < in_n; ++c) {
      const double w = weight[r][c];
      if (w == 0.0) continue;
      // Positive weights propagate lower->lower, negative swap roles.
      const LinearForm& lo_src = w >= 0.0 ? lower_[c] : upper_[c];
      const LinearForm& hi_src = w >= 0.0 ? upper_[c] : lower_[c];
      for (std::size_t k = 0; k < x_n; ++k) {
        lo.coeffs[k] += w * lo_src.coeffs[k];
        hi.coeffs[k] += w * hi_src.coeffs[k];
      }
      lo.constant += w * lo_src.constant;
      hi.constant += w * hi_src.constant;
    }
    out.lower_[r] = std::move(lo);
    out.upper_[r] = std::move(hi);
  }
  out.refresh_concrete();
  return out;
}

LinearBounds LinearBounds::scale_shift(const std::vector<double>& scale,
                                       const std::vector<double>& shift) const {
  const std::size_t n = lower_.size();
  check(scale.size() == n && shift.size() == n, "LinearBounds::scale_shift: size mismatch");
  LinearBounds out = *this;
  for (std::size_t i = 0; i < n; ++i) {
    if (scale[i] < 0.0) std::swap(out.lower_[i], out.upper_[i]);
    for (double& c : out.lower_[i].coeffs) c *= scale[i];
    for (double& c : out.upper_[i].coeffs) c *= scale[i];
    out.lower_[i].constant = out.lower_[i].constant * scale[i] + shift[i];
    out.upper_[i].constant = out.upper_[i].constant * scale[i] + shift[i];
  }
  out.refresh_concrete();
  return out;
}

LinearBounds LinearBounds::relu() const {
  const std::size_t n = lower_.size();
  const std::size_t x_n = input_box_.size();
  LinearBounds out = *this;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = concrete_[i].lo;
    const double hi = concrete_[i].hi;
    if (lo >= 0.0) continue;  // identity
    if (hi <= 0.0) {          // constantly zero
      out.lower_[i] = LinearForm{std::vector<double>(x_n, 0.0), 0.0};
      out.upper_[i] = out.lower_[i];
      continue;
    }
    // Unstable: upper = chord lambda*(u(x) - lo); lower = 0 or identity,
    // whichever halves the triangle area (DeepPoly's heuristic).
    const double lambda = hi / (hi - lo);
    LinearForm upper = upper_[i];
    for (double& c : upper.coeffs) c *= lambda;
    upper.constant = lambda * (upper.constant - lo);
    out.upper_[i] = std::move(upper);
    if (hi < -lo) {
      out.lower_[i] = LinearForm{std::vector<double>(x_n, 0.0), 0.0};
    }
    // else keep the identity lower form lower_[i].
  }
  out.refresh_concrete();
  // Post-ReLU values are non-negative regardless of the lower form.
  for (std::size_t i = 0; i < n; ++i)
    out.concrete_[i] =
        Interval(std::max(out.concrete_[i].lo, 0.0), std::max(out.concrete_[i].hi, 0.0));
  return out;
}

LinearBounds LinearBounds::leaky_relu(double alpha) const {
  check(alpha > 0.0 && alpha < 1.0, "LinearBounds::leaky_relu: alpha must be in (0, 1)");
  const std::size_t n = lower_.size();
  LinearBounds out = *this;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = concrete_[i].lo;
    const double hi = concrete_[i].hi;
    if (lo >= 0.0) continue;  // identity piece
    if (hi <= 0.0) {          // alpha piece: exact scaling
      for (double& c : out.lower_[i].coeffs) c *= alpha;
      for (double& c : out.upper_[i].coeffs) c *= alpha;
      out.lower_[i].constant *= alpha;
      out.upper_[i].constant *= alpha;
      continue;
    }
    // Unstable: f convex => chord from (lo, alpha*lo) to (hi, hi) is an
    // upper bound; the steeper linear piece is the better lower bound.
    const double slope = (hi - alpha * lo) / (hi - lo);
    LinearForm upper = upper_[i];
    for (double& c : upper.coeffs) c *= slope;
    upper.constant = slope * (upper.constant - lo) + alpha * lo;
    out.upper_[i] = std::move(upper);
    if (hi < -lo) {
      // Lower piece alpha*x dominates on most of the range.
      for (double& c : out.lower_[i].coeffs) c *= alpha;
      out.lower_[i].constant *= alpha;
    }
    // else keep the identity lower form.
  }
  out.refresh_concrete();
  return out;
}

void LinearBounds::clamp_concrete(const Box& box) {
  check(box.size() == concrete_.size(), "LinearBounds::clamp_concrete: size mismatch");
  for (std::size_t i = 0; i < concrete_.size(); ++i) {
    const double lo = std::max(concrete_[i].lo, box[i].lo);
    const double hi = std::min(concrete_[i].hi, box[i].hi);
    concrete_[i] = Interval(std::min(lo, hi), std::max(lo, hi));
  }
}

std::vector<Box> symbolic_bounds_trace(const nn::Network& net, const Box& input_box,
                                       std::size_t from_layer, std::size_t to_layer) {
  check(from_layer <= to_layer && to_layer <= net.layer_count(),
        "symbolic_bounds_trace: invalid layer range");
  LinearBounds state = LinearBounds::from_box(input_box);
  Box interval_box = input_box;
  std::vector<Box> trace;
  trace.reserve(to_layer - from_layer);
  for (std::size_t i = from_layer; i < to_layer; ++i) {
    const nn::Layer& layer = net.layer(i);
    switch (layer.kind()) {
      case nn::LayerKind::kDense: {
        const auto& d = static_cast<const nn::Dense&>(layer);
        const std::size_t out_n = d.output_shape().dim(0);
        const std::size_t in_n = d.input_shape().dim(0);
        std::vector<std::vector<double>> weight(out_n, std::vector<double>(in_n));
        std::vector<double> bias(out_n);
        for (std::size_t r = 0; r < out_n; ++r) {
          bias[r] = d.bias()[r];
          for (std::size_t c = 0; c < in_n; ++c) weight[r][c] = d.weight().at2(r, c);
        }
        state = state.affine(weight, bias);
        break;
      }
      case nn::LayerKind::kBatchNorm: {
        const auto& bn = static_cast<const nn::BatchNorm&>(layer);
        const std::size_t n = bn.input_shape().dim(0);
        std::vector<double> scale(n), shift(n);
        for (std::size_t f = 0; f < n; ++f) {
          scale[f] = bn.effective_scale(f);
          shift[f] = bn.effective_shift(f);
        }
        state = state.scale_shift(scale, shift);
        break;
      }
      case nn::LayerKind::kReLU:
        state = state.relu();
        break;
      case nn::LayerKind::kLeakyReLU:
        state = state.leaky_relu(static_cast<const nn::LeakyReLU&>(layer).alpha());
        break;
      case nn::LayerKind::kFlatten:
        break;
      default:
        throw ContractViolation("symbolic_bounds_trace: unsupported layer kind '" +
                                nn::layer_kind_name(layer.kind()) + "' in verified tail");
    }
    // Intersect with interval propagation: never looser than the box
    // domain; the symbolic state and the interval box both benefit, which
    // sharpens later ReLU phase decisions.
    interval_box = propagate_box(layer, interval_box);
    Box merged(state.concrete().size());
    for (std::size_t k = 0; k < merged.size(); ++k) {
      const double lo = std::max(state.concrete()[k].lo, interval_box[k].lo);
      const double hi = std::min(state.concrete()[k].hi, interval_box[k].hi);
      merged[k] = Interval(std::min(lo, hi), std::max(lo, hi));
    }
    interval_box = merged;
    state.clamp_concrete(merged);
    trace.push_back(merged);
  }
  return trace;
}

}  // namespace dpv::absint
