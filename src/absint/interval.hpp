// Interval arithmetic.
//
// The box abstract domain of Lemma 2: a sound but possibly coarse
// over-approximation S of the reachable neuron values, computed
// layer-wise. The paper contrasts this static S against the
// data-derived S̃ of the assume-guarantee approach.
#pragma once

#include <string>
#include <vector>

namespace dpv::absint {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_in, double hi_in);

  double width() const { return hi - lo; }
  double midpoint() const { return 0.5 * (lo + hi); }
  bool contains(double v) const { return lo <= v && v <= hi; }
  bool intersects(const Interval& other) const { return lo <= other.hi && other.lo <= hi; }

  /// Smallest interval containing both.
  Interval hull(const Interval& other) const;

  std::string to_string() const;
};

Interval operator+(const Interval& a, const Interval& b);
Interval operator-(const Interval& a, const Interval& b);

/// Scale by a scalar (handles negative factors).
Interval scale(const Interval& a, double factor);

/// Shift by a scalar.
Interval shift(const Interval& a, double offset);

/// relu([lo, hi]) = [max(lo,0), max(hi,0)].
Interval relu(const Interval& a);

/// Image under a monotone non-decreasing function.
template <typename Fn>
Interval monotone_image(const Interval& a, Fn fn) {
  return Interval(fn(a.lo), fn(a.hi));
}

/// A box: one interval per dimension.
using Box = std::vector<Interval>;

/// True when `point` lies inside `box` (sizes must match).
bool box_contains(const Box& box, const std::vector<double>& point);

/// Sum of interval widths — the tightness measure used by the
/// abstraction-comparison experiment (E4).
double box_total_width(const Box& box);

}  // namespace dpv::absint
