#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace dpv {

Tensor matvec(const Tensor& w, const Tensor& x) {
  check(w.shape().rank() == 2, "matvec: weight must be rank 2");
  check(x.shape().rank() == 1, "matvec: input must be rank 1");
  const std::size_t rows = w.shape().dim(0);
  const std::size_t cols = w.shape().dim(1);
  check(cols == x.numel(), "matvec: weight cols " + std::to_string(cols) +
                               " != input length " + std::to_string(x.numel()));
  Tensor y(Shape{rows});
  const double* wd = w.data().data();
  const double* xd = x.data().data();
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const double* row = wd + r * cols;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * xd[c];
    y[r] = acc;
  }
  return y;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "add: shape mismatch");
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] += b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "sub: shape mismatch");
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] -= b[i];
  return out;
}

Tensor scale(const Tensor& a, double factor) {
  Tensor out = a;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] *= factor;
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  check(a.shape().rank() == 1 && b.shape().rank() == 1, "dot: rank-1 tensors required");
  check(a.numel() == b.numel(), "dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) acc += a[i] * b[i];
  return acc;
}

std::size_t argmax(const Tensor& t) {
  check(t.numel() > 0, "argmax: empty tensor");
  return static_cast<std::size_t>(
      std::max_element(t.data().begin(), t.data().end()) - t.data().begin());
}

double min_value(const Tensor& t) {
  check(t.numel() > 0, "min_value: empty tensor");
  return *std::min_element(t.data().begin(), t.data().end());
}

double max_value(const Tensor& t) {
  check(t.numel() > 0, "max_value: empty tensor");
  return *std::max_element(t.data().begin(), t.data().end());
}

double mean_value(const Tensor& t) {
  check(t.numel() > 0, "mean_value: empty tensor");
  const double sum = std::accumulate(t.data().begin(), t.data().end(), 0.0);
  return sum / static_cast<double>(t.numel());
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

std::vector<double> adjacent_differences(const Tensor& t) {
  check(t.shape().rank() == 1, "adjacent_differences: rank-1 tensor required");
  std::vector<double> diffs;
  if (t.numel() < 2) return diffs;
  diffs.reserve(t.numel() - 1);
  for (std::size_t i = 0; i + 1 < t.numel(); ++i) diffs.push_back(t[i + 1] - t[i]);
  return diffs;
}

}  // namespace dpv
