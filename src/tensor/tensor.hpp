// Dense row-major tensor of doubles.
//
// The whole library — inference, training, verification — works in double
// precision so that values fed to the LP/MILP layer match the values the
// network actually computes, without a float->double conversion gap.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/shape.hpp"

namespace dpv {

class Rng;

/// Dense row-major tensor. Value semantics; cheap to move.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; `values.size()` must equal `shape.numel()`.
  Tensor(Shape shape, std::vector<double> values);

  /// Convenience rank-1 tensor from a flat vector.
  static Tensor vector1d(std::vector<double> values);

  /// Tensor with i.i.d. normal entries (used for weight initialization).
  static Tensor randn(const Shape& shape, Rng& rng, double stddev);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return values_.size(); }

  /// Flat element access.
  double& operator[](std::size_t i) { return values_[i]; }
  double operator[](std::size_t i) const { return values_[i]; }

  /// Rank-2 access (row, col); checked.
  double& at2(std::size_t r, std::size_t c);
  double at2(std::size_t r, std::size_t c) const;

  /// Rank-3 access (channel, row, col); checked.
  double& at3(std::size_t ch, std::size_t r, std::size_t c);
  double at3(std::size_t ch, std::size_t r, std::size_t c) const;

  std::vector<double>& data() { return values_; }
  const std::vector<double>& data() const { return values_; }

  /// Reinterprets the contents under a new shape with equal numel.
  Tensor reshaped(const Shape& new_shape) const;

  void fill(double value);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::size_t index2(std::size_t r, std::size_t c) const;
  std::size_t index3(std::size_t ch, std::size_t r, std::size_t c) const;

  Shape shape_;
  std::vector<double> values_;
};

}  // namespace dpv
