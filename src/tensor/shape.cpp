#include "tensor/shape.hpp"

#include "common/check.hpp"

namespace dpv {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}

Shape::Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

std::size_t Shape::dim(std::size_t axis) const {
  // Hot path: build the diagnostic only on failure.
  if (axis >= dims_.size())
    throw ContractViolation("Shape::dim: axis " + std::to_string(axis) +
                            " out of range for rank " + std::to_string(dims_.size()));
  return dims_[axis];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace dpv
