// Free-function tensor operations.
//
// Only the handful of dense kernels the NN and verification layers need;
// kept as free functions so the Tensor class stays a plain container.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace dpv {

/// y = W x for a rank-2 weight `w` of shape [rows, cols] and rank-1 `x`.
Tensor matvec(const Tensor& w, const Tensor& x);

/// Elementwise a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (shapes must match).
Tensor sub(const Tensor& a, const Tensor& b);

/// Elementwise scale.
Tensor scale(const Tensor& a, double factor);

/// Dot product of two rank-1 tensors of equal length.
double dot(const Tensor& a, const Tensor& b);

/// Index of the largest element (first on ties); tensor must be non-empty.
std::size_t argmax(const Tensor& t);

/// Smallest element; tensor must be non-empty.
double min_value(const Tensor& t);

/// Largest element; tensor must be non-empty.
double max_value(const Tensor& t);

/// Arithmetic mean; tensor must be non-empty.
double mean_value(const Tensor& t);

/// Max-norm distance between two equal-shape tensors.
double max_abs_diff(const Tensor& a, const Tensor& b);

/// Adjacent differences t[i+1] - t[i] of a rank-1 tensor (length n-1).
///
/// This is the quantity the paper monitors in addition to per-neuron
/// ranges (Sec. V: "minimum and maximum difference between two adjacent
/// neurons in a layer").
std::vector<double> adjacent_differences(const Tensor& t);

}  // namespace dpv
