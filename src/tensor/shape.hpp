// Tensor shapes.
//
// A Shape is an ordered list of extents. The library uses rank-1 shapes
// for flat feature vectors, rank-2 for weight matrices and batches, and
// rank-3 (channels, height, width) for images inside the convolutional
// front-end.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace dpv {

/// Ordered extents of a tensor. Immutable after construction.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::vector<std::size_t> dims);

  std::size_t rank() const { return dims_.size(); }

  /// Extent of dimension `axis`; throws on out-of-range axis.
  std::size_t dim(std::size_t axis) const;

  /// Total number of elements (product of extents; 1 for rank 0).
  std::size_t numel() const;

  const std::vector<std::size_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[3, 16, 32]".
  std::string to_string() const;

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace dpv
