#include "tensor/tensor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dpv {

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), values_(shape_.numel(), 0.0) {}

Tensor::Tensor(Shape shape, std::vector<double> values)
    : shape_(std::move(shape)), values_(std::move(values)) {
  check(values_.size() == shape_.numel(),
        "Tensor: value count " + std::to_string(values_.size()) + " does not match shape " +
            shape_.to_string());
}

Tensor Tensor::vector1d(std::vector<double> values) {
  Shape shape{values.size()};
  return Tensor(shape, std::move(values));
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, double stddev) {
  Tensor t(shape);
  for (double& v : t.values_) v = rng.normal(0.0, stddev);
  return t;
}

std::size_t Tensor::index2(std::size_t r, std::size_t c) const {
  // Hot path (dense backward): diagnostics are built only on failure.
  const auto& dims = shape_.dims();
  if (dims.size() != 2 || r >= dims[0] || c >= dims[1])
    throw ContractViolation("Tensor::at2: index (" + std::to_string(r) + ", " +
                            std::to_string(c) + ") invalid for shape " + shape_.to_string());
  return r * dims[1] + c;
}

std::size_t Tensor::index3(std::size_t ch, std::size_t r, std::size_t c) const {
  // Hot path (conv inner loops): diagnostics are built only on failure.
  const auto& dims = shape_.dims();
  if (dims.size() != 3 || ch >= dims[0] || r >= dims[1] || c >= dims[2])
    throw ContractViolation("Tensor::at3: index (" + std::to_string(ch) + ", " +
                            std::to_string(r) + ", " + std::to_string(c) +
                            ") invalid for shape " + shape_.to_string());
  return (ch * dims[1] + r) * dims[2] + c;
}

double& Tensor::at2(std::size_t r, std::size_t c) { return values_[index2(r, c)]; }
double Tensor::at2(std::size_t r, std::size_t c) const { return values_[index2(r, c)]; }

double& Tensor::at3(std::size_t ch, std::size_t r, std::size_t c) {
  return values_[index3(ch, r, c)];
}
double Tensor::at3(std::size_t ch, std::size_t r, std::size_t c) const {
  return values_[index3(ch, r, c)];
}

Tensor Tensor::reshaped(const Shape& new_shape) const {
  check(new_shape.numel() == values_.size(),
        "Tensor::reshaped: numel mismatch between " + shape_.to_string() + " and " +
            new_shape.to_string());
  return Tensor(new_shape, values_);
}

void Tensor::fill(double value) { std::fill(values_.begin(), values_.end(), value); }

}  // namespace dpv
