#include "train/metrics.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dpv::train {

namespace {
double ratio(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(whole);
}
}  // namespace

double ConfusionCounts::accuracy() const { return ratio(tp + tn, total()); }
double ConfusionCounts::alpha() const { return ratio(tp, total()); }
double ConfusionCounts::beta() const { return ratio(fp, total()); }
double ConfusionCounts::gamma() const { return ratio(fn, total()); }
double ConfusionCounts::delta() const { return ratio(tn, total()); }

ConfusionCounts binary_confusion(const nn::Network& classifier, const Dataset& data) {
  ConfusionCounts counts;
  for (const Sample& s : data.samples()) {
    check(s.target.numel() == 1, "binary_confusion: scalar target expected");
    const Tensor out = classifier.forward(s.input);
    check(out.numel() == 1, "binary_confusion: single-logit classifier expected");
    const bool predicted = out[0] >= 0.0;
    const bool actual = s.target[0] >= 0.5;
    if (predicted && actual)
      ++counts.tp;
    else if (predicted && !actual)
      ++counts.fp;
    else if (!predicted && actual)
      ++counts.fn;
    else
      ++counts.tn;
  }
  return counts;
}

double regression_mse(const nn::Network& net, const Dataset& data) {
  check(!data.empty(), "regression_mse: empty dataset");
  double acc = 0.0;
  std::size_t n = 0;
  for (const Sample& s : data.samples()) {
    const Tensor out = net.forward(s.input);
    check(out.same_shape(s.target), "regression_mse: target shape mismatch");
    for (std::size_t i = 0; i < out.numel(); ++i) {
      const double d = out[i] - s.target[i];
      acc += d * d;
      ++n;
    }
  }
  return acc / static_cast<double>(n);
}

double regression_mae(const nn::Network& net, const Dataset& data) {
  check(!data.empty(), "regression_mae: empty dataset");
  double acc = 0.0;
  std::size_t n = 0;
  for (const Sample& s : data.samples()) {
    const Tensor out = net.forward(s.input);
    check(out.same_shape(s.target), "regression_mae: target shape mismatch");
    for (std::size_t i = 0; i < out.numel(); ++i) {
      acc += std::abs(out[i] - s.target[i]);
      ++n;
    }
  }
  return acc / static_cast<double>(n);
}

}  // namespace dpv::train
