// Labelled datasets.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace dpv {
class Rng;
}

namespace dpv::train {

/// One labelled example.
struct Sample {
  Tensor input;
  Tensor target;
};

/// In-memory dataset of labelled examples.
class Dataset {
 public:
  Dataset() = default;

  void add(Tensor input, Tensor target);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  const Sample& operator[](std::size_t i) const;

  const std::vector<Sample>& samples() const { return samples_; }

  /// All inputs (used for activation recording / monitor construction).
  std::vector<Tensor> inputs() const;

  /// Deterministically shuffles and splits off the first `fraction` of
  /// samples as the first element (e.g. a training split).
  std::pair<Dataset, Dataset> split(double fraction, Rng& rng) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace dpv::train
