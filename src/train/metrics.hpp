// Evaluation metrics.
//
// ConfusionCounts is the bridge to the paper's Section III: its cell
// frequencies are exactly the alpha / beta / gamma / (1-a-b-g) entries of
// Table I once normalized by the evaluation-set size.
#pragma once

#include <cstddef>

#include "nn/network.hpp"
#include "train/dataset.hpp"

namespace dpv::train {

/// 2x2 confusion table for a binary classifier.
///
/// Cells follow Table I of the paper with "positive" meaning the property
/// phi holds: tp = (predicted 1, in In_phi), fp = (predicted 1, not in
/// In_phi), fn = (predicted 0, in In_phi), tn = (predicted 0, not in
/// In_phi).
struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  std::size_t total() const { return tp + fp + fn + tn; }
  double accuracy() const;

  /// Table I cell probabilities (relative frequencies).
  double alpha() const;  // h=1 and in in In_phi
  double beta() const;   // h=1 and in not in In_phi
  double gamma() const;  // h=0 and in in In_phi  — the soundness gap
  double delta() const;  // h=0 and in not in In_phi
};

/// Confusion of `classifier` (single-logit output, decision logit >= 0)
/// against a dataset with scalar {0,1} targets.
ConfusionCounts binary_confusion(const nn::Network& classifier, const Dataset& data);

/// Mean squared error of a regressor over a dataset.
double regression_mse(const nn::Network& net, const Dataset& data);

/// Mean absolute error of a regressor over a dataset.
double regression_mae(const nn::Network& net, const Dataset& data);

}  // namespace dpv::train
