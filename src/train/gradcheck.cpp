#include "train/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dpv::train {

namespace {

void update_errors(double analytic, double numeric, GradCheckResult& result) {
  const double abs_err = std::abs(analytic - numeric);
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-8});
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
}

double loss_at(nn::Network& net, const Tensor& input, const Tensor& target, const Loss& loss) {
  // Training-mode forward so BatchNorm uses the same statistics path the
  // analytic backward differentiates through.
  const std::vector<Tensor> ys = net.forward_batch({input}, /*training=*/true);
  return loss.value(ys[0], target);
}

}  // namespace

GradCheckResult check_parameter_gradients(nn::Network& net, const Tensor& input,
                                          const Tensor& target, const Loss& loss,
                                          double epsilon) {
  check(epsilon > 0.0, "check_parameter_gradients: epsilon must be positive");
  GradCheckResult result;

  net.zero_grad();
  const std::vector<Tensor> ys = net.forward_batch({input}, /*training=*/true);
  net.backward_batch({loss.gradient(ys[0], target)});

  // Snapshot analytic gradients before perturbing parameters.
  std::vector<std::vector<double>> analytic;
  for (nn::ParamRef& p : net.params()) analytic.push_back(p.grad->data());

  std::size_t param_idx = 0;
  for (nn::ParamRef& p : net.params()) {
    Tensor& value = *p.value;
    for (std::size_t i = 0; i < value.numel(); ++i) {
      const double saved = value[i];
      value[i] = saved + epsilon;
      const double plus = loss_at(net, input, target, loss);
      value[i] = saved - epsilon;
      const double minus = loss_at(net, input, target, loss);
      value[i] = saved;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      update_errors(analytic[param_idx][i], numeric, result);
    }
    ++param_idx;
  }
  return result;
}

GradCheckResult check_input_gradients(nn::Network& net, const Tensor& input,
                                      const Tensor& target, const Loss& loss, double epsilon) {
  check(epsilon > 0.0, "check_input_gradients: epsilon must be positive");
  GradCheckResult result;

  net.zero_grad();
  const std::vector<Tensor> ys = net.forward_batch({input}, /*training=*/true);
  const std::vector<Tensor> gxs = net.backward_batch({loss.gradient(ys[0], target)});
  const Tensor& analytic = gxs[0];

  Tensor probe = input;
  for (std::size_t i = 0; i < probe.numel(); ++i) {
    const double saved = probe[i];
    probe[i] = saved + epsilon;
    const double plus = loss_at(net, probe, target, loss);
    probe[i] = saved - epsilon;
    const double minus = loss_at(net, probe, target, loss);
    probe[i] = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    update_errors(analytic[i], numeric, result);
  }
  return result;
}

}  // namespace dpv::train
