#include "train/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dpv::train {

Sgd::Sgd(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  check(learning_rate > 0.0, "Sgd: learning rate must be positive");
  check(momentum >= 0.0 && momentum < 1.0, "Sgd: momentum must be in [0, 1)");
}

void Sgd::step(std::vector<nn::ParamRef> params) {
  if (velocity_.empty())
    for (const auto& p : params) velocity_.emplace_back(p.value->numel(), 0.0);
  internal_check(velocity_.size() == params.size(), "Sgd: parameter set changed between steps");
  for (std::size_t k = 0; k < params.size(); ++k) {
    Tensor& value = *params[k].value;
    const Tensor& grad = *params[k].grad;
    auto& vel = velocity_[k];
    internal_check(vel.size() == value.numel(), "Sgd: parameter size changed between steps");
    for (std::size_t i = 0; i < value.numel(); ++i) {
      vel[i] = momentum_ * vel[i] - learning_rate_ * grad[i];
      value[i] += vel[i];
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double eps)
    : learning_rate_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(eps) {
  check(learning_rate > 0.0, "Adam: learning rate must be positive");
  check(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0,
        "Adam: betas must be in [0, 1)");
}

void Adam::step(std::vector<nn::ParamRef> params) {
  if (first_moment_.empty()) {
    for (const auto& p : params) {
      first_moment_.emplace_back(p.value->numel(), 0.0);
      second_moment_.emplace_back(p.value->numel(), 0.0);
    }
  }
  internal_check(first_moment_.size() == params.size(),
                 "Adam: parameter set changed between steps");
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    Tensor& value = *params[k].value;
    const Tensor& grad = *params[k].grad;
    auto& m = first_moment_[k];
    auto& v = second_moment_[k];
    for (std::size_t i = 0; i < value.numel(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      value[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace dpv::train
