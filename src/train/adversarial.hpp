// Gradient-based input search: FGSM / PGD attacks and counterexample
// concretization.
//
// Section V of the paper suggests that when a property cannot be proven,
// "it should be possible to construct a counter example either by
// capturing more data or by using adversarial perturbation techniques".
// This module provides both: classic attacks against the perception
// regressor, and `concretize_activation`, which searches the *input*
// space for an image whose layer-l features approach a counterexample
// activation n̂_l reported by the MILP verifier.
//
// All searches are const on the network: gradients flow through the
// stateless `Network::input_gradient` VJP path, never the training
// caches, so campaign workers can attack one shared network from many
// threads without cloning it. Randomness (multi-start PGD) comes only
// from `AttackConfig::seed` — there is no global rng state — which is
// what lets `run_campaign` derive per-entry seeds and keep its report
// tables bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>

#include "nn/network.hpp"
#include "train/loss.hpp"

namespace dpv::train {

struct AttackConfig {
  double epsilon = 0.05;      ///< max-norm perturbation budget
  double step_size = 0.01;    ///< PGD step
  std::size_t steps = 20;     ///< PGD iterations per start
  double clamp_lo = 0.0;      ///< valid pixel range lower bound
  double clamp_hi = 1.0;      ///< valid pixel range upper bound
  std::size_t restarts = 1;   ///< PGD starts: the clean input, then
                              ///< restarts-1 random points in the ball
  std::uint64_t seed = 0x5eed;  ///< rng seed for the random restarts
};

/// One-step fast gradient sign attack maximizing `loss` at (input, target).
Tensor fgsm_attack(const nn::Network& net, const Tensor& input, const Tensor& target,
                   const Loss& loss, const AttackConfig& config);

/// Projected gradient descent attack (iterated FGSM with projection onto
/// the epsilon ball around `input` intersected with the pixel range).
/// With `config.restarts > 1` the search is repeated from deterministic
/// random starts inside the ball and the highest-loss candidate wins.
Tensor pgd_attack(const nn::Network& net, const Tensor& input, const Tensor& target,
                  const Loss& loss, const AttackConfig& config);

struct ConcretizationResult {
  Tensor input;            ///< best input found
  double distance = 0.0;   ///< final ||f^(l)(input) - target_activation||_inf
  std::size_t iterations = 0;
};

/// Searches for an input whose layer-`l` activation approaches
/// `target_activation`, starting from `seed` (projected gradient descent
/// on the squared feature distance, pixels clamped to [lo, hi]).
ConcretizationResult concretize_activation(const nn::Network& net, std::size_t l,
                                           const Tensor& target_activation, const Tensor& seed,
                                           std::size_t max_iterations = 200,
                                           double step_size = 0.05, double clamp_lo = 0.0,
                                           double clamp_hi = 1.0);

}  // namespace dpv::train
