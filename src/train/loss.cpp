#include "train/loss.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dpv::train {

double MseLoss::value(const Tensor& pred, const Tensor& target) const {
  check(pred.same_shape(target), "MseLoss: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = pred[i] - target[i];
    acc += d * d;
  }
  return acc / static_cast<double>(pred.numel());
}

Tensor MseLoss::gradient(const Tensor& pred, const Tensor& target) const {
  check(pred.same_shape(target), "MseLoss: shape mismatch");
  Tensor g = pred;
  const double scale = 2.0 / static_cast<double>(pred.numel());
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] = scale * (pred[i] - target[i]);
  return g;
}

double BceWithLogitsLoss::value(const Tensor& pred, const Tensor& target) const {
  check(pred.numel() == 1 && target.numel() == 1, "BceWithLogitsLoss: scalar logit expected");
  const double z = pred[0];
  const double t = target[0];
  return std::max(z, 0.0) - z * t + std::log1p(std::exp(-std::abs(z)));
}

Tensor BceWithLogitsLoss::gradient(const Tensor& pred, const Tensor& target) const {
  check(pred.numel() == 1 && target.numel() == 1, "BceWithLogitsLoss: scalar logit expected");
  const double z = pred[0];
  const double t = target[0];
  const double sigma = 1.0 / (1.0 + std::exp(-z));
  Tensor g(Shape{1});
  g[0] = sigma - t;
  return g;
}

}  // namespace dpv::train
