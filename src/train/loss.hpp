// Loss functions for the training substrate.
//
// The direct perception network is a regressor (MSE over waypoint and
// orientation); the input property characterizer is a binary classifier
// trained on logits (BCE-with-logits, so the characterizer network itself
// stays purely piecewise-linear for the MILP encoder).
#pragma once

#include "tensor/tensor.hpp"

namespace dpv::train {

/// Loss over one (prediction, target) pair.
class Loss {
 public:
  virtual ~Loss() = default;

  /// Scalar loss value.
  virtual double value(const Tensor& pred, const Tensor& target) const = 0;

  /// dL/dpred, same shape as `pred`.
  virtual Tensor gradient(const Tensor& pred, const Tensor& target) const = 0;
};

/// Mean squared error: mean_i (pred_i - target_i)^2.
class MseLoss : public Loss {
 public:
  double value(const Tensor& pred, const Tensor& target) const override;
  Tensor gradient(const Tensor& pred, const Tensor& target) const override;
};

/// Binary cross entropy on a single logit; target is {0, 1}.
///
/// Numerically stable form: loss = max(z, 0) - z*t + log(1 + exp(-|z|)).
class BceWithLogitsLoss : public Loss {
 public:
  double value(const Tensor& pred, const Tensor& target) const override;
  Tensor gradient(const Tensor& pred, const Tensor& target) const override;
};

}  // namespace dpv::train
