#include "train/dataset.hpp"

#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dpv::train {

void Dataset::add(Tensor input, Tensor target) {
  samples_.push_back(Sample{std::move(input), std::move(target)});
}

const Sample& Dataset::operator[](std::size_t i) const {
  check(i < samples_.size(), "Dataset: index out of range");
  return samples_[i];
}

std::vector<Tensor> Dataset::inputs() const {
  std::vector<Tensor> xs;
  xs.reserve(samples_.size());
  for (const Sample& s : samples_) xs.push_back(s.input);
  return xs;
}

std::pair<Dataset, Dataset> Dataset::split(double fraction, Rng& rng) const {
  check(fraction >= 0.0 && fraction <= 1.0, "Dataset::split: fraction must be in [0, 1]");
  std::vector<std::size_t> order(samples_.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto cut = static_cast<std::size_t>(fraction * static_cast<double>(samples_.size()));
  Dataset first, second;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Sample& s = samples_[order[i]];
    if (i < cut)
      first.add(s.input, s.target);
    else
      second.add(s.input, s.target);
  }
  return {std::move(first), std::move(second)};
}

}  // namespace dpv::train
