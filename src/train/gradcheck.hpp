// Numerical gradient verification.
//
// Central-difference checking of the analytic backward passes; the
// property-based layer tests sweep this across layer kinds and shapes.
#pragma once

#include "nn/network.hpp"
#include "train/loss.hpp"

namespace dpv::train {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Compares analytic parameter gradients of `net` against central
/// differences for one (input, target) pair under `loss`.
///
/// `epsilon` is the finite-difference step. The network is restored to
/// its original parameters before returning.
GradCheckResult check_parameter_gradients(nn::Network& net, const Tensor& input,
                                          const Tensor& target, const Loss& loss,
                                          double epsilon = 1e-6);

/// Compares the analytic input gradient against central differences.
GradCheckResult check_input_gradients(nn::Network& net, const Tensor& input,
                                      const Tensor& target, const Loss& loss,
                                      double epsilon = 1e-6);

}  // namespace dpv::train
