// First-order optimizers.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dpv::train {

/// Applies accumulated gradients to parameters. Optimizers keep internal
/// state (momentum buffers) keyed by parameter position, so the same
/// optimizer instance must be used with the same network throughout.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One update step given the network's current parameter references.
  virtual void step(std::vector<nn::ParamRef> params) = 0;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);
  void step(std::vector<nn::ParamRef> params) override;

 private:
  double learning_rate_;
  double momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(std::vector<nn::ParamRef> params) override;

 private:
  double learning_rate_, beta1_, beta2_, eps_;
  long step_count_ = 0;
  std::vector<std::vector<double>> first_moment_;
  std::vector<std::vector<double>> second_moment_;
};

}  // namespace dpv::train
