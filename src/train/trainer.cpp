#include "train/trainer.hpp"

#include <cstdio>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dpv::train {

LossHistory Trainer::fit(nn::Network& net, const Dataset& data, const Loss& loss,
                         Optimizer& optimizer) {
  check(!data.empty(), "Trainer::fit: empty dataset");
  check(config_.batch_size > 0, "Trainer::fit: batch size must be positive");
  Rng rng(config_.shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  LossHistory history;
  history.reserve(config_.epochs);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, order.size());
      std::vector<Tensor> xs, ts;
      xs.reserve(end - start);
      ts.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) {
        xs.push_back(data[order[i]].input);
        ts.push_back(data[order[i]].target);
      }
      net.zero_grad();
      const std::vector<Tensor> ys = net.forward_batch(xs, /*training=*/true);
      std::vector<Tensor> grads;
      grads.reserve(ys.size());
      const double inv_batch = 1.0 / static_cast<double>(ys.size());
      for (std::size_t i = 0; i < ys.size(); ++i) {
        epoch_loss += loss.value(ys[i], ts[i]);
        Tensor g = loss.gradient(ys[i], ts[i]);
        for (std::size_t j = 0; j < g.numel(); ++j) g[j] *= inv_batch;
        grads.push_back(std::move(g));
      }
      seen += ys.size();
      net.backward_batch(grads);
      optimizer.step(net.params());
    }
    history.push_back(epoch_loss / static_cast<double>(seen));
    if (config_.verbose)
      std::printf("epoch %3zu  loss %.6f\n", epoch + 1, history.back());
  }
  return history;
}

double Trainer::evaluate(const nn::Network& net, const Dataset& data, const Loss& loss) {
  check(!data.empty(), "Trainer::evaluate: empty dataset");
  double acc = 0.0;
  for (const Sample& s : data.samples()) acc += loss.value(net.forward(s.input), s.target);
  return acc / static_cast<double>(data.size());
}

}  // namespace dpv::train
