#include "train/adversarial.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::train {

namespace {

Tensor input_gradient(nn::Network& net, const Tensor& input, const Tensor& target,
                      const Loss& loss) {
  net.zero_grad();
  const std::vector<Tensor> ys = net.forward_batch({input}, /*training=*/true);
  const std::vector<Tensor> gxs = net.backward_batch({loss.gradient(ys[0], target)});
  return gxs[0];
}

void project(Tensor& x, const Tensor& center, double epsilon, double lo, double hi) {
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = std::clamp(x[i], center[i] - epsilon, center[i] + epsilon);
    x[i] = std::clamp(x[i], lo, hi);
  }
}

}  // namespace

Tensor fgsm_attack(nn::Network& net, const Tensor& input, const Tensor& target,
                   const Loss& loss, const AttackConfig& config) {
  check(config.epsilon > 0.0, "fgsm_attack: epsilon must be positive");
  const Tensor grad = input_gradient(net, input, target, loss);
  Tensor adv = input;
  for (std::size_t i = 0; i < adv.numel(); ++i) {
    const double sign = grad[i] > 0.0 ? 1.0 : (grad[i] < 0.0 ? -1.0 : 0.0);
    adv[i] += config.epsilon * sign;
  }
  project(adv, input, config.epsilon, config.clamp_lo, config.clamp_hi);
  return adv;
}

Tensor pgd_attack(nn::Network& net, const Tensor& input, const Tensor& target, const Loss& loss,
                  const AttackConfig& config) {
  check(config.steps > 0, "pgd_attack: steps must be positive");
  Tensor adv = input;
  for (std::size_t step = 0; step < config.steps; ++step) {
    const Tensor grad = input_gradient(net, adv, target, loss);
    for (std::size_t i = 0; i < adv.numel(); ++i) {
      const double sign = grad[i] > 0.0 ? 1.0 : (grad[i] < 0.0 ? -1.0 : 0.0);
      adv[i] += config.step_size * sign;
    }
    project(adv, input, config.epsilon, config.clamp_lo, config.clamp_hi);
  }
  return adv;
}

ConcretizationResult concretize_activation(const nn::Network& net, std::size_t l,
                                           const Tensor& target_activation, const Tensor& seed,
                                           std::size_t max_iterations, double step_size,
                                           double clamp_lo, double clamp_hi) {
  check(l <= net.layer_count(), "concretize_activation: layer index out of range");
  nn::Network prefix = net.clone_prefix(l);
  check(prefix.layer_count() > 0, "concretize_activation: empty prefix");
  check(prefix.output_shape().numel() == target_activation.numel(),
        "concretize_activation: target activation size mismatch");

  const MseLoss feature_loss;
  ConcretizationResult result;
  result.input = seed;
  Tensor x = seed;
  double best = max_abs_diff(prefix.forward(x), target_activation);
  result.distance = best;

  for (std::size_t it = 0; it < max_iterations; ++it) {
    prefix.zero_grad();
    const std::vector<Tensor> ys = prefix.forward_batch({x}, /*training=*/true);
    const std::vector<Tensor> gxs =
        prefix.backward_batch({feature_loss.gradient(ys[0], target_activation)});
    for (std::size_t i = 0; i < x.numel(); ++i)
      x[i] = std::clamp(x[i] - step_size * gxs[0][i], clamp_lo, clamp_hi);
    const double dist = max_abs_diff(prefix.forward(x), target_activation);
    result.iterations = it + 1;
    if (dist < best) {
      best = dist;
      result.input = x;
      result.distance = dist;
    }
  }
  return result;
}

}  // namespace dpv::train
