#include "train/adversarial.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::train {

namespace {

Tensor loss_input_gradient(const nn::Network& net, const Tensor& input, const Tensor& target,
                           const Loss& loss) {
  const Tensor pred = net.forward(input);
  return net.input_gradient(input, loss.gradient(pred, target));
}

void project(Tensor& x, const Tensor& center, double epsilon, double lo, double hi) {
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = std::clamp(x[i], center[i] - epsilon, center[i] + epsilon);
    x[i] = std::clamp(x[i], lo, hi);
  }
}

Tensor pgd_from(const nn::Network& net, const Tensor& start, const Tensor& input,
                const Tensor& target, const Loss& loss, const AttackConfig& config) {
  Tensor adv = start;
  for (std::size_t step = 0; step < config.steps; ++step) {
    const Tensor grad = loss_input_gradient(net, adv, target, loss);
    for (std::size_t i = 0; i < adv.numel(); ++i) {
      const double sign = grad[i] > 0.0 ? 1.0 : (grad[i] < 0.0 ? -1.0 : 0.0);
      adv[i] += config.step_size * sign;
    }
    project(adv, input, config.epsilon, config.clamp_lo, config.clamp_hi);
  }
  return adv;
}

}  // namespace

Tensor fgsm_attack(const nn::Network& net, const Tensor& input, const Tensor& target,
                   const Loss& loss, const AttackConfig& config) {
  check(config.epsilon > 0.0, "fgsm_attack: epsilon must be positive");
  const Tensor grad = loss_input_gradient(net, input, target, loss);
  Tensor adv = input;
  for (std::size_t i = 0; i < adv.numel(); ++i) {
    const double sign = grad[i] > 0.0 ? 1.0 : (grad[i] < 0.0 ? -1.0 : 0.0);
    adv[i] += config.epsilon * sign;
  }
  project(adv, input, config.epsilon, config.clamp_lo, config.clamp_hi);
  return adv;
}

Tensor pgd_attack(const nn::Network& net, const Tensor& input, const Tensor& target,
                  const Loss& loss, const AttackConfig& config) {
  check(config.steps > 0, "pgd_attack: steps must be positive");
  check(config.restarts > 0, "pgd_attack: restarts must be positive");
  Rng rng(config.seed);
  Tensor best_adv = pgd_from(net, input, input, target, loss, config);
  double best_loss = loss.value(net.forward(best_adv), target);
  for (std::size_t r = 1; r < config.restarts; ++r) {
    Tensor start = input;
    for (std::size_t i = 0; i < start.numel(); ++i)
      start[i] += rng.uniform(-config.epsilon, config.epsilon);
    project(start, input, config.epsilon, config.clamp_lo, config.clamp_hi);
    const Tensor adv = pgd_from(net, start, input, target, loss, config);
    const double l = loss.value(net.forward(adv), target);
    if (l > best_loss) {
      best_loss = l;
      best_adv = adv;
    }
  }
  return best_adv;
}

ConcretizationResult concretize_activation(const nn::Network& net, std::size_t l,
                                           const Tensor& target_activation, const Tensor& seed,
                                           std::size_t max_iterations, double step_size,
                                           double clamp_lo, double clamp_hi) {
  check(l <= net.layer_count(), "concretize_activation: layer index out of range");
  check(l > 0, "concretize_activation: empty prefix");
  check(net.forward_prefix(seed, l).numel() == target_activation.numel(),
        "concretize_activation: target activation size mismatch");

  const MseLoss feature_loss;
  ConcretizationResult result;
  result.input = seed;
  Tensor x = seed;
  double best = max_abs_diff(net.forward_prefix(x, l), target_activation);
  result.distance = best;

  for (std::size_t it = 0; it < max_iterations; ++it) {
    const Tensor features = net.forward_prefix(x, l);
    const Tensor gx =
        net.input_gradient(x, feature_loss.gradient(features, target_activation), 0, l);
    for (std::size_t i = 0; i < x.numel(); ++i)
      x[i] = std::clamp(x[i] - step_size * gx[i], clamp_lo, clamp_hi);
    const double dist = max_abs_diff(net.forward_prefix(x, l), target_activation);
    result.iterations = it + 1;
    if (dist < best) {
      best = dist;
      result.input = x;
      result.distance = dist;
    }
  }
  return result;
}

}  // namespace dpv::train
