// Mini-batch training loop.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "train/dataset.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"

namespace dpv::train {

struct TrainerConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
};

/// Per-epoch mean training loss, returned by Trainer::fit.
using LossHistory = std::vector<double>;

/// Drives forward/backward/step over shuffled mini-batches.
class Trainer {
 public:
  explicit Trainer(TrainerConfig config) : config_(config) {}

  /// Trains `net` in place; returns mean loss per epoch.
  LossHistory fit(nn::Network& net, const Dataset& data, const Loss& loss, Optimizer& optimizer);

  /// Mean loss of `net` over `data` (inference mode).
  static double evaluate(const nn::Network& net, const Dataset& data, const Loss& loss);

 private:
  TrainerConfig config_;
};

}  // namespace dpv::train
