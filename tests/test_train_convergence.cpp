// Training-loop integration tests: optimizers drive small networks to
// known solutions (linear regression, XOR, batch-norm classification).
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "train/dataset.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace dpv::train {
namespace {

Dataset make_linear_dataset(Rng& rng, std::size_t count) {
  // y = 2*x0 - x1 + 0.5
  Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({2.0 * x0 - x1 + 0.5}));
  }
  return data;
}

TEST(Trainer, SgdFitsLinearRegression) {
  Rng rng(1);
  Dataset data = make_linear_dataset(rng, 100);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->init_he(rng);
  net.add(std::move(d));

  MseLoss loss;
  Sgd optimizer(0.1, 0.9);
  Trainer trainer({.epochs = 60, .batch_size = 10, .shuffle_seed = 2});
  const LossHistory history = trainer.fit(net, data, loss, optimizer);
  EXPECT_LT(history.back(), 1e-4);
  EXPECT_LT(history.back(), history.front());

  const auto& dense = static_cast<const nn::Dense&>(net.layer(0));
  EXPECT_NEAR(dense.weight().at2(0, 0), 2.0, 0.05);
  EXPECT_NEAR(dense.weight().at2(0, 1), -1.0, 0.05);
  EXPECT_NEAR(dense.bias()[0], 0.5, 0.05);
}

TEST(Trainer, AdamSolvesXor) {
  Dataset data;
  data.add(Tensor::vector1d({0, 0}), Tensor::vector1d({0.0}));
  data.add(Tensor::vector1d({0, 1}), Tensor::vector1d({1.0}));
  data.add(Tensor::vector1d({1, 0}), Tensor::vector1d({1.0}));
  data.add(Tensor::vector1d({1, 1}), Tensor::vector1d({0.0}));

  Rng rng(3);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 8);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::Tanh>(Shape{8}));
  auto d2 = std::make_unique<nn::Dense>(8, 1);
  d2->init_he(rng);
  net.add(std::move(d2));

  BceWithLogitsLoss loss;
  Adam optimizer(0.05);
  Trainer trainer({.epochs = 300, .batch_size = 4, .shuffle_seed = 4});
  trainer.fit(net, data, loss, optimizer);

  const ConfusionCounts confusion = binary_confusion(net, data);
  EXPECT_EQ(confusion.accuracy(), 1.0);
}

TEST(Trainer, BatchNormNetworkTrainsAndFreezesForInference) {
  // Features with wildly different scales; BN should still converge and
  // the frozen inference path must agree with good training accuracy.
  Rng rng(7);
  Dataset data;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-100.0, 100.0);
    const double b = rng.uniform(-0.01, 0.01);
    const double label = (a / 100.0 + b * 100.0) > 0.0 ? 1.0 : 0.0;
    data.add(Tensor::vector1d({a, b}), Tensor::vector1d({label}));
  }
  nn::Network net;
  net.add(std::make_unique<nn::BatchNorm>(2));
  auto d1 = std::make_unique<nn::Dense>(2, 6);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto d2 = std::make_unique<nn::Dense>(6, 1);
  d2->init_he(rng);
  net.add(std::move(d2));

  BceWithLogitsLoss loss;
  Adam optimizer(0.02);
  Trainer trainer({.epochs = 60, .batch_size = 20, .shuffle_seed = 8});
  trainer.fit(net, data, loss, optimizer);
  EXPECT_GE(binary_confusion(net, data).accuracy(), 0.95);
}

TEST(Trainer, EvaluateMatchesManualMeanLoss) {
  Rng rng(11);
  Dataset data = make_linear_dataset(rng, 10);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->init_he(rng);
  net.add(std::move(d));
  MseLoss loss;
  double manual = 0.0;
  for (const Sample& s : data.samples()) manual += loss.value(net.forward(s.input), s.target);
  manual /= static_cast<double>(data.size());
  EXPECT_NEAR(Trainer::evaluate(net, data, loss), manual, 1e-12);
}

TEST(Dataset, SplitPartitionsDeterministically) {
  Rng rng(13);
  Dataset data = make_linear_dataset(rng, 100);
  Rng split_rng_a(5), split_rng_b(5);
  const auto [train_a, val_a] = data.split(0.7, split_rng_a);
  const auto [train_b, val_b] = data.split(0.7, split_rng_b);
  EXPECT_EQ(train_a.size(), 70u);
  EXPECT_EQ(val_a.size(), 30u);
  ASSERT_EQ(train_b.size(), train_a.size());
  for (std::size_t i = 0; i < train_a.size(); ++i)
    EXPECT_EQ(train_a[i].input[0], train_b[i].input[0]);
}

TEST(Metrics, ConfusionCountsMapToTableOneCells) {
  ConfusionCounts c{.tp = 40, .fp = 5, .fn = 10, .tn = 45};
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.85);
  EXPECT_DOUBLE_EQ(c.alpha(), 0.40);
  EXPECT_DOUBLE_EQ(c.beta(), 0.05);
  EXPECT_DOUBLE_EQ(c.gamma(), 0.10);
  EXPECT_DOUBLE_EQ(c.delta(), 0.45);
  EXPECT_DOUBLE_EQ(c.alpha() + c.beta() + c.gamma() + c.delta(), 1.0);
}

TEST(Optimizer, RejectsBadHyperparameters) {
  EXPECT_THROW(Sgd(0.0), ContractViolation);
  EXPECT_THROW(Sgd(0.1, 1.0), ContractViolation);
  EXPECT_THROW(Adam(-0.1), ContractViolation);
  EXPECT_THROW(Adam(0.1, 1.0), ContractViolation);
}

}  // namespace
}  // namespace dpv::train
