// SIMD dispatch layer differential tests: every vector kernel against
// its forced-scalar body on randomized data (lengths straddling the
// vector width, including tails), plus end-to-end parity of the two
// consumers — zonotope propagation and the sparse-LU FTRAN/BTRAN /
// revised-simplex pipeline — with the toggle flipped. On a binary built
// without AVX2 the two paths are the same code and the tests degenerate
// to self-comparisons, which keeps them portable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "absint/box_domain.hpp"
#include "absint/zonotope.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "lp/basis_lu.hpp"
#include "lp/revised_simplex.hpp"

namespace dpv {
namespace {

using absint::Box;
using absint::Zonotope;

/// Forces the scalar bodies for the lifetime of the object.
class ScopedForceScalar {
 public:
  ScopedForceScalar() { simd::set_force_scalar(true); }
  ~ScopedForceScalar() { simd::set_force_scalar(false); }
};

std::vector<double> random_vector(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-3.0, 3.0);
  return v;
}

/// Lengths that cover the empty case, sub-width tails, exact multiples
/// of the 4-lane width, and the >= 8 unrolled-loop threshold.
const std::size_t kLengths[] = {0, 1, 3, 4, 5, 7, 8, 9, 16, 31, 64, 129};

TEST(SimdKernels, DenseKernelsMatchScalarBodies) {
  Rng rng(2024);
  for (const std::size_t n : kLengths) {
    const std::vector<double> a = random_vector(rng, n);
    const std::vector<double> b = random_vector(rng, n);

    double dot_simd = 0.0, dot_scalar = 0.0;
    double sum_simd = 0.0, sum_scalar = 0.0;
    std::vector<double> axpy_simd = b, axpy_scalar = b;
    std::vector<double> ss_simd = a, ss_scalar = a;
    std::vector<double> had_simd = a, had_scalar = a;
    std::vector<double> fma_simd = a, fma_scalar = a;
    std::vector<double> acc_simd = b, acc_scalar = b;

    dot_simd = simd::dot(a.data(), b.data(), n);
    sum_simd = simd::sum_abs(a.data(), n);
    simd::axpy(0.75, a.data(), axpy_simd.data(), n);
    simd::scale_shift(ss_simd.data(), -1.25, 0.5, n);
    simd::hadamard(had_simd.data(), b.data(), n);
    simd::hadamard_fma(fma_simd.data(), b.data(), b.data(), n);
    simd::accumulate_abs(a.data(), acc_simd.data(), n);
    {
      ScopedForceScalar scalar;
      dot_scalar = simd::dot(a.data(), b.data(), n);
      sum_scalar = simd::sum_abs(a.data(), n);
      simd::axpy(0.75, a.data(), axpy_scalar.data(), n);
      simd::scale_shift(ss_scalar.data(), -1.25, 0.5, n);
      simd::hadamard(had_scalar.data(), b.data(), n);
      simd::hadamard_fma(fma_scalar.data(), b.data(), b.data(), n);
      simd::accumulate_abs(a.data(), acc_scalar.data(), n);
    }

    EXPECT_NEAR(dot_simd, dot_scalar, 1e-9) << "n " << n;
    EXPECT_NEAR(sum_simd, sum_scalar, 1e-9) << "n " << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(axpy_simd[i], axpy_scalar[i], 1e-12) << "n " << n << " i " << i;
      EXPECT_NEAR(ss_simd[i], ss_scalar[i], 1e-12) << "n " << n << " i " << i;
      EXPECT_NEAR(had_simd[i], had_scalar[i], 1e-12) << "n " << n << " i " << i;
      EXPECT_NEAR(fma_simd[i], fma_scalar[i], 1e-12) << "n " << n << " i " << i;
      EXPECT_NEAR(acc_simd[i], acc_scalar[i], 1e-12) << "n " << n << " i " << i;
    }
  }
}

TEST(SimdKernels, SparseGatherDotMatchesScalarBody) {
  Rng rng(77);
  for (const std::size_t n : kLengths) {
    const std::size_t x_len = 256;
    const std::vector<double> x = random_vector(rng, x_len);
    std::vector<std::int32_t> idx(n);
    std::vector<double> val(n);
    for (std::size_t k = 0; k < n; ++k) {
      idx[k] = rng.uniform_int(0, static_cast<int>(x_len) - 1);
      val[k] = rng.uniform(-2.0, 2.0);
    }
    const double vec = simd::sparse_gather_dot(idx.data(), val.data(), x.data(), n);
    double ref = 0.0;
    {
      ScopedForceScalar scalar;
      ref = simd::sparse_gather_dot(idx.data(), val.data(), x.data(), n);
    }
    EXPECT_NEAR(vec, ref, 1e-9) << "n " << n;

    // The scatter half is scalar by design; it must still be exact.
    std::vector<double> target = x;
    simd::sparse_scatter_axpy(idx.data(), val.data(), 0.5, target.data(), n);
    std::vector<double> expect = x;
    for (std::size_t k = 0; k < n; ++k) expect[idx[k]] -= 0.5 * val[k];
    for (std::size_t i = 0; i < x_len; ++i) EXPECT_EQ(target[i], expect[i]);
  }
}

TEST(SimdKernels, ArgmaxViolationMatchesScalarIncludingTies) {
  Rng rng(4242);
  for (const std::size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<double> xb(n), lo(n), up(n), w(n);
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] = rng.uniform(-2.0, 0.0);
        up[i] = lo[i] + rng.uniform(0.0, 2.0);
        // Mix of in-box, below-lo, and above-up rows; quantized offsets
        // manufacture exact score ties so the smallest-index rule is
        // actually exercised, not just the generic max.
        const double off = 0.25 * rng.uniform_int(0, 8);
        switch (rng.uniform_int(0, 2)) {
          case 0: xb[i] = lo[i] + 0.5 * (up[i] - lo[i]); break;
          case 1: xb[i] = lo[i] - off; break;
          default: xb[i] = up[i] + off; break;
        }
        w[i] = rng.bernoulli(0.5) ? 1.0 : 4.0;  // exact in binary FP
      }
      for (const bool devex : {false, true}) {
        const double* weights = devex ? w.data() : nullptr;
        const std::size_t vec = simd::argmax_violation(
            xb.data(), lo.data(), up.data(), weights, 1e-7, n);
        std::size_t ref = n;
        {
          ScopedForceScalar scalar;
          ref = simd::argmax_violation(xb.data(), lo.data(), up.data(),
                                       weights, 1e-7, n);
        }
        EXPECT_EQ(vec, ref) << "n " << n << " trial " << trial
                            << " devex " << devex;
      }
    }
  }
}

TEST(SimdKernels, BackendNameFollowsToggle) {
  if (simd::compiled_with_avx2()) {
    EXPECT_STREQ(simd::backend_name(), "avx2");
    ScopedForceScalar scalar;
    EXPECT_STREQ(simd::backend_name(), "scalar");
  } else {
    EXPECT_STREQ(simd::backend_name(), "scalar");
  }
}

// ---------------------------------------------------- zonotope parity

Zonotope random_zonotope(Rng& rng, std::size_t n, std::size_t gens) {
  Box box(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = rng.uniform(-1.0, 1.0);
    box[i] = absint::Interval(c - rng.uniform(0.1, 1.0), c + rng.uniform(0.1, 1.0));
  }
  Zonotope z = Zonotope::from_box(box);
  // Rotate through a dense affine map so the generators stop being axis
  // aligned and every later kernel sees full rows.
  std::vector<std::vector<double>> weight(gens ? n : n, std::vector<double>(n));
  std::vector<double> bias(n);
  for (std::size_t r = 0; r < n; ++r) {
    bias[r] = rng.uniform(-0.5, 0.5);
    for (std::size_t c = 0; c < n; ++c) weight[r][c] = rng.uniform(-1.0, 1.0);
  }
  return z.affine(weight, bias);
}

void expect_box_near(const Box& a, const Box& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].lo, b[i].lo, tol) << "dim " << i;
    EXPECT_NEAR(a[i].hi, b[i].hi, tol) << "dim " << i;
  }
}

TEST(SimdZonotopeParity, AffineScaleShiftReluAndReduceMatchScalar) {
  Rng rng(311);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const std::size_t out_n = static_cast<std::size_t>(rng.uniform_int(1, 19));
    const Zonotope z = random_zonotope(rng, n, n);

    std::vector<std::vector<double>> weight(out_n, std::vector<double>(n));
    std::vector<double> bias(out_n);
    for (std::size_t r = 0; r < out_n; ++r) {
      bias[r] = rng.uniform(-1.0, 1.0);
      for (std::size_t c = 0; c < n; ++c) weight[r][c] = rng.uniform(-1.5, 1.5);
    }
    std::vector<double> scale(n), shift(n);
    for (std::size_t i = 0; i < n; ++i) {
      scale[i] = rng.uniform(-2.0, 2.0);
      shift[i] = rng.uniform(-1.0, 1.0);
    }

    const Box affine_vec = z.affine(weight, bias).to_box();
    const Box scaled_vec = z.scale_shift(scale, shift).to_box();
    const Box relu_vec = z.relu(nullptr).to_box();
    const Box reduced_vec = z.reduce(n / 2 + 1).to_box();
    ScopedForceScalar scalar;
    expect_box_near(affine_vec, z.affine(weight, bias).to_box(), 1e-9);
    expect_box_near(scaled_vec, z.scale_shift(scale, shift).to_box(), 1e-9);
    expect_box_near(relu_vec, z.relu(nullptr).to_box(), 1e-9);
    expect_box_near(reduced_vec, z.reduce(n / 2 + 1).to_box(), 1e-9);
  }
}

// ------------------------------------------- basis LU / simplex parity

TEST(SimdLuParity, FtranBtranMatchScalarAcrossPivotChains) {
  Rng rng(555);
  const std::size_t m = 32;
  const std::size_t n = 70;
  // Random sparse columns, ~4 nonzeros each.
  lp::CscMatrix A;
  A.rows = m;
  A.cols = n;
  A.col_start.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    A.col_start[j] = A.row_index.size();
    for (int k = 0; k < 4; ++k) {
      A.row_index.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(m) - 1)));
      A.value.push_back(rng.uniform(0.5, 2.5) * (rng.bernoulli(0.5) ? 1.0 : -1.0));
    }
  }
  A.col_start[n] = A.row_index.size();
  std::vector<std::int32_t> basic(m);
  for (std::size_t k = 0; k < m; ++k) basic[k] = static_cast<std::int32_t>(n + k);

  lp::BasisLu vec_lu, scalar_lu;
  ASSERT_TRUE(vec_lu.factorize(A, n, basic));
  {
    ScopedForceScalar scalar;
    ASSERT_TRUE(scalar_lu.factorize(A, n, basic));
  }
  std::size_t applied = 0;
  for (int attempt = 0; attempt < 300 && applied < 60; ++attempt) {
    const std::size_t q =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
    bool in_basis = false;
    for (const std::int32_t b : basic)
      if (static_cast<std::size_t>(b) == q) in_basis = true;
    if (in_basis) continue;
    std::vector<double> column(m, 0.0);
    for (std::size_t e = A.col_start[q]; e < A.col_start[q + 1]; ++e)
      column[A.row_index[e]] += A.value[e];
    std::vector<double> w_vec = column, w_scalar = column;
    vec_lu.ftran(w_vec);
    {
      ScopedForceScalar scalar;
      scalar_lu.ftran(w_scalar);
    }
    for (std::size_t i = 0; i < m; ++i)
      ASSERT_NEAR(w_vec[i], w_scalar[i], 1e-8) << "pivot " << applied;
    std::size_t r = m;
    double best = 1e-6;
    for (std::size_t i = 0; i < m; ++i) {
      if (std::abs(w_vec[i]) > best) {
        best = std::abs(w_vec[i]);
        r = i;
      }
    }
    if (r == m) continue;
    const bool ok_vec = vec_lu.update(r, w_vec);
    bool ok_scalar = false;
    {
      ScopedForceScalar scalar;
      ok_scalar = scalar_lu.update(r, w_scalar);
    }
    ASSERT_EQ(ok_vec, ok_scalar) << "pivot " << applied;
    basic[r] = static_cast<std::int32_t>(q);
    if (!ok_vec) {
      ASSERT_TRUE(vec_lu.factorize(A, n, basic));
      ScopedForceScalar scalar;
      ASSERT_TRUE(scalar_lu.factorize(A, n, basic));
    }
    ++applied;

    std::vector<double> rhs(m);
    for (std::size_t i = 0; i < m; ++i) rhs[i] = rng.uniform(-1.0, 1.0);
    std::vector<double> y_vec = rhs, y_scalar = rhs;
    vec_lu.btran(y_vec);
    {
      ScopedForceScalar scalar;
      scalar_lu.btran(y_scalar);
    }
    for (std::size_t i = 0; i < m; ++i)
      ASSERT_NEAR(y_vec[i], y_scalar[i], 1e-8) << "btran pivot " << applied;
  }
  ASSERT_GE(applied, 40u);
}

TEST(SimdSimplexParity, RevisedSimplexOptimaMatchScalarOnRandomLps) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 10007 + 23);
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(2, 9));
    const std::size_t m_rows = static_cast<std::size_t>(rng.uniform_int(1, 12));
    lp::LpProblem p;
    std::vector<double> interior(n_vars);
    for (std::size_t i = 0; i < n_vars; ++i) {
      const double lo = rng.uniform(-4.0, 0.0);
      const double hi = rng.uniform(0.5, 4.0);
      p.add_variable(lo, hi);
      interior[i] = 0.5 * (lo + hi);
    }
    for (std::size_t r = 0; r < m_rows; ++r) {
      std::vector<lp::LinearTerm> terms;
      double activity = 0.0;
      for (std::size_t c = 0; c < n_vars; ++c) {
        if (rng.bernoulli(0.4)) continue;
        const double coeff = rng.uniform(-2.0, 2.0);
        terms.push_back({c, coeff});
        activity += coeff * interior[c];
      }
      if (terms.empty()) terms.push_back({0, 1.0}), activity = interior[0];
      p.add_row(terms, lp::RowSense::kLessEqual, activity + rng.uniform(0.1, 1.5));
    }
    std::vector<lp::LinearTerm> objective;
    for (std::size_t c = 0; c < n_vars; ++c)
      objective.push_back({c, rng.uniform(-1.0, 1.0)});
    p.set_objective(objective, lp::Objective::kMinimize);

    for (const lp::FactorizationKind kind :
         {lp::FactorizationKind::kDenseInverse, lp::FactorizationKind::kSparseLu}) {
      lp::SimplexOptions options;
      options.factorization = kind;
      lp::RevisedSimplex vec(options), sca(options);
      vec.load(p);
      sca.load(p);
      const lp::LpSolution a = vec.solve();
      lp::LpSolution b;
      {
        ScopedForceScalar scalar;
        b = sca.solve();
      }
      ASSERT_EQ(a.status, b.status) << "seed " << seed;
      if (a.status == lp::SolveStatus::kOptimal)
        EXPECT_NEAR(a.objective, b.objective, 1e-7) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dpv
