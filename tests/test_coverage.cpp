// Scenario-coverage engine tests: partition invariants over randomized
// refinement, certified-volume monotonicity, soundness of SAFE and
// UNSAFE cells against concrete renders, and the determinism grid
// (thread counts, falsify modes).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "absint/box_domain.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/coverage.hpp"
#include "data/dataset_gen.hpp"
#include "data/perception_model.hpp"
#include "monitor/activation_recorder.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace dpv::core {
namespace {

// ---------------------------------------------------------------------
// Partition invariants (no network required).

OperationalDomain small_domain() {
  OperationalDomain domain;
  domain.initial_grid = {3, 2, 2, 1};
  return domain;
}

double leaf_volume_sum(const CoverageMap& map) {
  double total = 0.0;
  for (const std::size_t id : map.leaves()) total += map.cell(id).volume_fraction;
  return total;
}

/// Counts leaves containing the scenario. Random draws are almost surely
/// off every cell face, so an exact tiling yields exactly one.
std::size_t containing_leaves(const CoverageMap& map, const data::RoadScenario& s) {
  std::size_t count = 0;
  for (const std::size_t id : map.leaves())
    if (data::scenario_in_box(map.cell(id).box, s)) ++count;
  return count;
}

TEST(CoveragePartition, InitialGridTilesDomain) {
  const OperationalDomain domain = small_domain();
  const CoverageMap map(domain);
  EXPECT_EQ(map.cells().size(), 3u * 2u * 2u * 1u);
  EXPECT_NEAR(leaf_volume_sum(map), 1.0, 1e-12);

  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const data::RoadScenario s = data::sample_scenario_in(domain.box, rng);
    EXPECT_EQ(containing_leaves(map, s), 1u);
  }
}

TEST(CoveragePartition, RandomizedRefinementTilesExactly) {
  const OperationalDomain domain = small_domain();
  CoverageMap map(domain);
  Rng rng(23);
  // Random refinement sequence: any leaf, any dimension. The invariants
  // must hold after every split, not just at the end.
  for (int step = 0; step < 40; ++step) {
    const std::vector<std::size_t> leaf_ids = map.leaves();
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(leaf_ids.size()) - 1));
    const std::size_t dim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(data::ScenarioBox::kDimensions) - 1));
    map.split_cell(leaf_ids[pick], dim);
    ASSERT_NEAR(leaf_volume_sum(map), 1.0, 1e-9);
  }
  for (int i = 0; i < 200; ++i) {
    const data::RoadScenario s = data::sample_scenario_in(domain.box, rng);
    EXPECT_EQ(containing_leaves(map, s), 1u);
  }
  // Children share the split face exactly and halve the volume.
  for (const CoverageCell& c : map.cells()) {
    if (c.is_leaf()) continue;
    const CoverageCell& lo = map.cell(c.children[0]);
    const CoverageCell& hi = map.cell(c.children[1]);
    EXPECT_EQ(lo.box.dim(c.split_dim).hi, hi.box.dim(c.split_dim).lo);
    EXPECT_NEAR(lo.volume_fraction + hi.volume_fraction, c.volume_fraction, 1e-12);
    EXPECT_EQ(lo.parent, c.id);
    EXPECT_EQ(hi.parent, c.id);
    EXPECT_EQ(lo.depth, c.depth + 1);
  }
}

TEST(CoveragePartition, CertifiedCellsAreNeverSplit) {
  CoverageMap map(small_domain());
  map.cell_mutable(0).status = CellStatus::kCertified;
  EXPECT_THROW(map.split_cell(0, 0), ContractViolation);
  // The same cell as UNSAFE splits fine.
  map.cell_mutable(0).status = CellStatus::kUnsafe;
  EXPECT_NO_THROW(map.split_cell(0, 0));
  // And a non-leaf refuses a second split.
  EXPECT_THROW(map.split_cell(0, 1), ContractViolation);
}

TEST(CoveragePartition, ChildHashesAreLineageStable) {
  CoverageMap a(small_domain());
  CoverageMap b(small_domain());
  const auto [a_lo, a_hi] = a.split_cell(2, 1);
  const auto [b_lo, b_hi] = b.split_cell(2, 1);
  EXPECT_EQ(a.cell(a_lo).path_hash, b.cell(b_lo).path_hash);
  EXPECT_EQ(a.cell(a_hi).path_hash, b.cell(b_hi).path_hash);
  EXPECT_NE(a.cell(a_lo).path_hash, a.cell(a_hi).path_hash);
  EXPECT_EQ(a.cell(a_lo).path_hash, coverage_child_hash(a.cell(2).path_hash, 1, 0));
}

TEST(CoverageSplitHeuristic, CounterexampleImplicatesOffCenterDimension) {
  const data::ScenarioBox domain = data::scenario_domain();
  data::ScenarioBox cell = domain;  // full domain cell
  data::RoadScenario cex;
  cex.curvature = -0.9;  // far off the midpoint 0 in domain units
  cex.lane_offset = 0.01;
  cex.brightness = 0.85;  // dead center
  cex.traffic_distance = 0.55;
  EXPECT_EQ(choose_split_dimension(cell, domain, &cex), 0u);

  // Same witness, but the curvature dimension already collapsed around
  // it: lane offset (next most off-center in domain units) wins.
  cell.curvature = absint::Interval(-0.9, -0.9);
  cex.lane_offset = -0.29;
  EXPECT_EQ(choose_split_dimension(cell, domain, &cex), 1u);
}

TEST(CoverageSplitHeuristic, BisectionFallbackPicksRelativelyWidestDim) {
  const data::ScenarioBox domain = data::scenario_domain();
  data::ScenarioBox cell = domain;
  cell.curvature = absint::Interval(-0.25, 0.0);  // 1/8 of domain width
  // lane offset still full width -> relatively widest.
  EXPECT_EQ(choose_split_dimension(cell, domain, nullptr), 1u);

  // A dead-center witness carries no direction: falls back to bisection.
  data::RoadScenario center;
  center.curvature = cell.curvature.midpoint();
  center.lane_offset = cell.lane_offset.midpoint();
  center.brightness = cell.brightness.midpoint();
  center.traffic_distance = cell.traffic_distance.midpoint();
  EXPECT_EQ(choose_split_dimension(cell, domain, &center), 1u);
}

// ---------------------------------------------------------------------
// End-to-end runs on a small trained perception model.

struct CoverageTestbed {
  data::PerceptionModel model;
  verify::RiskSpec risk;
};

const CoverageTestbed& coverage_testbed() {
  static const CoverageTestbed instance = [] {
    CoverageTestbed tb;
    data::PerceptionConfig pconfig;
    pconfig.render.width = 16;
    pconfig.render.height = 8;
    pconfig.conv1_channels = 2;
    pconfig.conv2_channels = 4;
    pconfig.embedding = 12;
    pconfig.features = 8;
    pconfig.tail_hidden = 8;
    pconfig.batchnorm_tail = false;
    Rng rng(7);
    tb.model = data::make_perception_network(pconfig, rng);

    data::RoadDatasetConfig data_cfg{400, 17, pconfig.render};
    const std::vector<data::RoadSample> samples = data::generate_road_samples(data_cfg);
    train::MseLoss loss;
    train::Adam optimizer(0.005);
    train::Trainer trainer({.epochs = 25, .batch_size = 32, .shuffle_seed = 3});
    trainer.fit(tb.model.network, data::to_regression_dataset(samples), loss, optimizer);

    // Risk: heading hard left. True heading is 0.8 * curvature, so the
    // risk region is roughly curvature <= -0.44 — inside the leftmost
    // initial cell, with the rest of the domain certifiable.
    tb.risk = verify::RiskSpec("heading-hard-left");
    tb.risk.output_at_most(1, 2, -0.35);
    return tb;
  }();
  return instance;
}

CoverageOptions fast_options(const data::PerceptionConfig& pconfig) {
  CoverageOptions options;
  options.render = pconfig.render;
  options.samples_per_cell = 10;
  options.seed = 99;
  options.max_rounds = 3;
  options.max_depth = 4;
  options.threads = 1;
  options.cell_node_budget = 600;
  options.verifier.falsify.restarts = 2;
  options.verifier.falsify.steps = 25;
  return options;
}

OperationalDomain run_domain() {
  OperationalDomain domain;
  domain.initial_grid = {4, 1, 1, 1};
  return domain;
}

const CoverageReport& shared_report() {
  static const CoverageReport instance = [] {
    const CoverageTestbed& tb = coverage_testbed();
    return run_coverage(tb.model.network, tb.model.attach_layer, tb.risk, run_domain(),
                        fast_options(tb.model.config));
  }();
  return instance;
}

TEST(CoverageRun, CertifiedVolumeMonotoneAcrossRounds) {
  const CoverageReport& report = shared_report();
  ASSERT_FALSE(report.rounds.empty());
  double previous = 0.0;
  for (const CoverageRound& r : report.rounds) {
    EXPECT_GE(r.certified_volume_fraction, previous);
    previous = r.certified_volume_fraction;
  }
  EXPECT_NEAR(leaf_volume_sum(report.map), 1.0, 1e-9);
  // The model is trained: the hard-left band falsifies and the benign
  // side certifies, so both outcomes must be represented.
  EXPECT_GT(report.map.unsafe_volume_fraction(), 0.0);
  EXPECT_GT(report.map.certified_volume_fraction(), 0.0);
}

TEST(CoverageRun, SafeCellsAreNeverResplit) {
  const CoverageReport& report = shared_report();
  for (const CoverageCell& cell : report.map.cells())
    if (!cell.is_leaf()) EXPECT_NE(cell.status, CellStatus::kCertified) << cell.id;
}

TEST(CoverageRun, SoundnessOfSafeCells) {
  const CoverageTestbed& tb = coverage_testbed();
  const CoverageReport& report = shared_report();
  const CoverageOptions options = fast_options(tb.model.config);
  std::size_t checked = 0;
  for (const std::size_t id : report.map.leaves()) {
    const CoverageCell& cell = report.map.cell(id);
    if (cell.status != CellStatus::kCertified) continue;
    // Regenerate exactly the scenarios the cell was certified from (the
    // engine's documented draw pattern) and check the property concretely.
    Rng rng(coverage_cell_seed(options.seed, cell.path_hash));
    for (std::size_t i = 0; i < options.samples_per_cell; ++i) {
      const data::RoadScenario s = data::sample_scenario_in(cell.box, rng);
      ASSERT_TRUE(data::scenario_in_box(cell.box, s));
      const Tensor image = data::render_road_image(s, options.render);
      const Tensor output = tb.model.network.forward(image);
      // Certified cell: no build sample may sit in the risk region.
      EXPECT_LT(tb.risk.min_margin(output), options.require_margin) << "cell " << id;
      // Conditional proofs must deploy a monitor that admits its own
      // support (margin >= 0 guarantees containment of build samples).
      if (cell.verdict == SafetyVerdict::kSafeConditional) {
        ASSERT_TRUE(cell.safety.deployed_monitor.has_value());
        const Tensor activation =
            tb.model.network.forward_prefix(image, tb.model.attach_layer);
        EXPECT_TRUE(cell.safety.deployed_monitor->contains(activation)) << "cell " << id;
      }
    }
    // Fresh scenarios (different stream): whenever the deployed monitor
    // accepts the activation, the conditional proof covers it, so the
    // output must stay out of the risk region (solver tolerance slack).
    if (cell.verdict == SafetyVerdict::kSafeConditional) {
      Rng fresh(coverage_cell_seed(options.seed ^ 0xfeedULL, cell.path_hash));
      for (std::size_t i = 0; i < 20; ++i) {
        const data::RoadScenario s = data::sample_scenario_in(cell.box, fresh);
        const Tensor image = data::render_road_image(s, options.render);
        const Tensor activation =
            tb.model.network.forward_prefix(image, tb.model.attach_layer);
        if (!cell.safety.deployed_monitor->contains(activation)) continue;
        const Tensor output =
            tb.model.network.forward_suffix(activation, tb.model.attach_layer);
        EXPECT_LT(tb.risk.min_margin(output), 1e-6) << "cell " << id;
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(CoverageRun, SoundnessOfUnsafeCells) {
  const CoverageTestbed& tb = coverage_testbed();
  const CoverageReport& report = shared_report();
  const CoverageOptions options = fast_options(tb.model.config);
  std::size_t scenario_witnesses = 0;
  for (const CoverageCell& cell : report.map.cells()) {
    if (cell.status != CellStatus::kUnsafe) continue;
    const verify::VerificationResult& v = cell.safety.verification;
    if (cell.has_counterexample_scenario) {
      // Scenario-space witness: inside the cell, and its render really
      // drives the network into the risk region with the strict margin.
      EXPECT_TRUE(data::scenario_in_box(cell.box, cell.counterexample_scenario))
          << "cell " << cell.id;
      const Tensor image =
          data::render_road_image(cell.counterexample_scenario, options.render);
      const Tensor output = tb.model.network.forward(image);
      EXPECT_GE(tb.risk.min_margin(output), options.require_margin) << "cell " << cell.id;
      ++scenario_witnesses;
    } else {
      // Abstract witness: validated at layer l; re-run the real tail.
      EXPECT_TRUE(v.counterexample_validated) << "cell " << cell.id;
      ASSERT_GT(v.counterexample_activation.numel(), 0u) << "cell " << cell.id;
      const Tensor output = tb.model.network.forward_suffix(v.counterexample_activation,
                                                           tb.model.attach_layer);
      EXPECT_GE(tb.risk.min_margin(output), -1e-6) << "cell " << cell.id;
    }
  }
  EXPECT_GT(scenario_witnesses, 0u);
}

TEST(CoverageRun, ReportFormatsAreCoherent) {
  const CoverageReport& report = shared_report();
  const std::string table = report.format_table();
  EXPECT_NE(table.find("coverage:"), std::string::npos);
  EXPECT_NE(table.find("funnel:"), std::string::npos);
  EXPECT_NE(table.find("round"), std::string::npos);
  const std::string map_text = report.map.format_map();
  EXPECT_NE(map_text.find("coverage map:"), std::string::npos);
  // Every cell appears in the map rendering.
  EXPECT_NE(map_text.find("cell 0 "), std::string::npos);
  const std::string summary = report.format_summary();
  EXPECT_NE(summary.find("coverage run:"), std::string::npos);
}

TEST(CoverageRun, StaticPrepassCertifiesFarOutRiskUnconditionally) {
  const CoverageTestbed& tb = coverage_testbed();
  // A risk no bounded-pixel input can reach: below even the *interval*
  // output floor of the whole-domain pixel hull (interval is looser
  // than the prepass's per-cell zonotope, so the proof must land).
  const data::ImageBounds domain_hull =
      data::render_road_image_bounds(data::scenario_domain(), tb.model.config.render);
  absint::Box domain_pixels;
  for (std::size_t i = 0; i < domain_hull.lo.numel(); ++i)
    domain_pixels.emplace_back(domain_hull.lo[i], domain_hull.hi[i]);
  const absint::Box output_box = absint::propagate_box_range(
      tb.model.network, domain_pixels, 0, tb.model.network.layer_count());
  verify::RiskSpec far("heading-absurd");
  far.output_at_most(1, 2, output_box[1].lo - 1.0);
  CoverageOptions options = fast_options(tb.model.config);
  options.max_rounds = 1;
  OperationalDomain domain;
  domain.initial_grid = {2, 1, 1, 1};
  const CoverageReport report =
      run_coverage(tb.model.network, tb.model.attach_layer, far, domain, options);
  EXPECT_NEAR(report.map.certified_volume_fraction(), 1.0, 1e-12);
  EXPECT_NEAR(report.map.certified_unconditional_fraction(), 1.0, 1e-12);
  EXPECT_EQ(report.static_proved, 2u);
  for (const std::size_t id : report.map.leaves()) {
    const CoverageCell& cell = report.map.cell(id);
    EXPECT_EQ(cell.verdict, SafetyVerdict::kSafeUnconditional);
    EXPECT_EQ(cell.decided_by, "static-bounds");
    EXPECT_FALSE(cell.safety.deployed_monitor.has_value());
  }
}

// ---------------------------------------------------------------------
// Determinism grid.

TEST(CoverageDeterminism, BitIdenticalAcrossThreadCounts) {
  const CoverageTestbed& tb = coverage_testbed();
  CoverageOptions options = fast_options(tb.model.config);
  options.max_rounds = 2;
  const CoverageReport serial = run_coverage(tb.model.network, tb.model.attach_layer,
                                             tb.risk, run_domain(), options);
  options.threads = 4;
  const CoverageReport parallel = run_coverage(tb.model.network, tb.model.attach_layer,
                                               tb.risk, run_domain(), options);
  EXPECT_EQ(serial.format_table(), parallel.format_table());
  EXPECT_EQ(serial.map.format_map(), parallel.map.format_map());
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r)
    EXPECT_EQ(serial.rounds[r].milp_nodes, parallel.rounds[r].milp_nodes);
}

TEST(CoverageDeterminism, DecidedCellsAgreeAcrossFalsifyModes) {
  const CoverageTestbed& tb = coverage_testbed();
  CoverageOptions options = fast_options(tb.model.config);
  options.max_rounds = 2;
  options.falsify_first = true;
  const CoverageReport with_falsify = run_coverage(tb.model.network, tb.model.attach_layer,
                                                   tb.risk, run_domain(), options);
  options.falsify_first = false;
  const CoverageReport without = run_coverage(tb.model.network, tb.model.attach_layer,
                                              tb.risk, run_domain(), options);
  // Cells are matched by lineage hash (same hash -> same box and same
  // sample stream). A cell decided in both runs must agree on the
  // outcome — the in-verifier pipeline is verdict-preserving, so only
  // UNKNOWNs may differ (budgets bite at different stages).
  std::map<std::uint64_t, const CoverageCell*> by_hash;
  for (const CoverageCell& cell : without.map.cells()) by_hash[cell.path_hash] = &cell;
  std::size_t compared = 0;
  for (const CoverageCell& cell : with_falsify.map.cells()) {
    const auto it = by_hash.find(cell.path_hash);
    if (it == by_hash.end()) continue;
    const CoverageCell& other = *it->second;
    const bool both_decided =
        (cell.status == CellStatus::kCertified || cell.status == CellStatus::kUnsafe) &&
        (other.status == CellStatus::kCertified || other.status == CellStatus::kUnsafe);
    if (!both_decided) continue;
    EXPECT_EQ(cell.status, other.status) << "cell hash " << cell.path_hash;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

}  // namespace
}  // namespace dpv::core
