// Metamorphic test suite: known input/output transformations whose effect
// on solver results is predictable. These catch the silent-corruption
// class of bugs (wrong sign, wrong scaling, order dependence) that
// example-based tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "lp/simplex.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/range_analysis.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

constexpr double kTol = 1e-6;

lp::LpProblem random_feasible_lp(Rng& rng, std::size_t n, std::size_t m,
                                 std::vector<std::vector<double>>* rows_out = nullptr) {
  lp::LpProblem p;
  std::vector<double> interior(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform(-4.0, 0.0);
    const double hi = rng.uniform(0.5, 4.0);
    p.add_variable(lo, hi);
    interior[i] = 0.5 * (lo + hi);
  }
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<lp::LinearTerm> terms;
    std::vector<double> coeffs(n);
    double activity = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      coeffs[c] = rng.uniform(-2.0, 2.0);
      terms.push_back({c, coeffs[c]});
      activity += coeffs[c] * interior[c];
    }
    p.add_row(terms, lp::RowSense::kLessEqual, activity + rng.uniform(0.5, 2.0));
    if (rows_out) rows_out->push_back(coeffs);
  }
  std::vector<lp::LinearTerm> obj;
  for (std::size_t c = 0; c < n; ++c) obj.push_back({c, rng.uniform(-1.0, 1.0)});
  p.set_objective(obj, lp::Objective::kMinimize);
  return p;
}

class LpMetamorphic : public ::testing::TestWithParam<int> {};

TEST_P(LpMetamorphic, ObjectiveScalingScalesOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5 + 1);
  lp::LpProblem p = random_feasible_lp(rng, 4, 5);
  const lp::LpSolution base = lp::SimplexSolver().solve(p);
  ASSERT_EQ(base.status, lp::SolveStatus::kOptimal);

  // Scale objective by 3: optimum value must scale by 3.
  std::vector<lp::LinearTerm> scaled = p.objective_terms();
  for (auto& t : scaled) t.coeff *= 3.0;
  p.set_objective(scaled, lp::Objective::kMinimize);
  const lp::LpSolution triple = lp::SimplexSolver().solve(p);
  ASSERT_EQ(triple.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(triple.objective, 3.0 * base.objective, kTol);
}

TEST_P(LpMetamorphic, MinMaxDuality) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11 + 3);
  lp::LpProblem p = random_feasible_lp(rng, 4, 4);
  const lp::LpSolution min_sol = lp::SimplexSolver().solve(p);
  ASSERT_EQ(min_sol.status, lp::SolveStatus::kOptimal);
  // Negate objective and maximize: same optimum value, negated.
  std::vector<lp::LinearTerm> negated = p.objective_terms();
  for (auto& t : negated) t.coeff *= -1.0;
  p.set_objective(negated, lp::Objective::kMaximize);
  const lp::LpSolution max_sol = lp::SimplexSolver().solve(p);
  ASSERT_EQ(max_sol.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(max_sol.objective, -min_sol.objective, kTol);
}

TEST_P(LpMetamorphic, RedundantRowDoesNotChangeOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 5);
  std::vector<std::vector<double>> rows;
  lp::LpProblem p = random_feasible_lp(rng, 3, 3, &rows);
  const lp::LpSolution base = lp::SimplexSolver().solve(p);
  ASSERT_EQ(base.status, lp::SolveStatus::kOptimal);
  // Duplicate the first row with a slacker rhs: cannot cut the optimum.
  std::vector<lp::LinearTerm> terms;
  for (std::size_t c = 0; c < rows[0].size(); ++c) terms.push_back({c, rows[0][c]});
  p.add_row(terms, lp::RowSense::kLessEqual, p.rows()[0].rhs + 1.0);
  const lp::LpSolution with_redundant = lp::SimplexSolver().solve(p);
  ASSERT_EQ(with_redundant.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(with_redundant.objective, base.objective, kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpMetamorphic, ::testing::Range(0, 10));

nn::Network random_tail(Rng& rng, std::size_t in_n, std::size_t hidden) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

class VerifierMetamorphic : public ::testing::TestWithParam<int> {};

TEST_P(VerifierMetamorphic, OutputBiasShiftTranslatesRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 23 + 7);
  nn::Network net = random_tail(rng, 3, 5);
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(3, -1.0, 1.0);
  const verify::RangeResult base = verify::output_range(q, 0);
  ASSERT_TRUE(base.exact);

  // Shift the final bias by +2.5: the reachable range translates exactly.
  auto& last = static_cast<nn::Dense&>(net.layer(2));
  Tensor w = last.weight();
  Tensor b = last.bias();
  b[0] += 2.5;
  last.set_parameters(std::move(w), std::move(b));
  const verify::RangeResult shifted = verify::output_range(q, 0);
  ASSERT_TRUE(shifted.exact);
  EXPECT_NEAR(shifted.range.lo, base.range.lo + 2.5, kTol);
  EXPECT_NEAR(shifted.range.hi, base.range.hi + 2.5, kTol);
}

TEST_P(VerifierMetamorphic, OutputScalingScalesRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 29 + 9);
  nn::Network net = random_tail(rng, 3, 4);
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(3, -1.0, 1.0);
  const verify::RangeResult base = verify::output_range(q, 0);
  ASSERT_TRUE(base.exact);

  auto& last = static_cast<nn::Dense&>(net.layer(2));
  Tensor w = last.weight();
  Tensor b = last.bias();
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] *= -2.0;
  b[0] *= -2.0;
  last.set_parameters(std::move(w), std::move(b));
  const verify::RangeResult scaled = verify::output_range(q, 0);
  ASSERT_TRUE(scaled.exact);
  // Negative scaling flips and stretches the interval.
  EXPECT_NEAR(scaled.range.lo, -2.0 * base.range.hi, 1e-5);
  EXPECT_NEAR(scaled.range.hi, -2.0 * base.range.lo, 1e-5);
}

TEST_P(VerifierMetamorphic, VerdictMatchesRangeAnalysis) {
  // SAFE(output >= t) must hold exactly when t > reachable max.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 11);
  nn::Network net = random_tail(rng, 3, 5);
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(3, -1.0, 1.0);
  const verify::RangeResult range = verify::output_range(q, 0);
  ASSERT_TRUE(range.exact);

  verify::VerificationQuery above = q;
  above.risk.output_at_least(0, 1, range.range.hi + 0.01);
  EXPECT_EQ(verify::TailVerifier().verify(above).verdict, verify::Verdict::kSafe);

  verify::VerificationQuery below = q;
  below.risk.output_at_least(0, 1, range.range.hi - 0.01);
  EXPECT_EQ(verify::TailVerifier().verify(below).verdict, verify::Verdict::kUnsafe);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierMetamorphic, ::testing::Range(0, 10));

}  // namespace
}  // namespace dpv
