// Tensor / shape / ops unit tests.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{3, 4, 5};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.dim(0), 3u);
  EXPECT_EQ(s.dim(2), 5u);
  EXPECT_EQ(s.numel(), 60u);
  EXPECT_EQ(s.to_string(), "[3, 4, 5]");
}

TEST(Shape, EmptyShapeHasOneElement) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, DimOutOfRangeThrows) {
  const Shape s{2, 2};
  EXPECT_THROW(s.dim(2), ContractViolation);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{4});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(Tensor, ShapeValueMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{3}, {1.0, 2.0}), ContractViolation);
}

TEST(Tensor, Rank2Access) {
  Tensor t(Shape{2, 3});
  t.at2(1, 2) = 7.5;
  EXPECT_EQ(t[5], 7.5);
  EXPECT_THROW(t.at2(2, 0), ContractViolation);
  EXPECT_THROW(t.at2(0, 3), ContractViolation);
}

TEST(Tensor, Rank3Access) {
  Tensor t(Shape{2, 2, 2});
  t.at3(1, 0, 1) = -3.0;
  EXPECT_EQ(t[5], -3.0);
  EXPECT_THROW(t.at3(0, 2, 0), ContractViolation);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0);
  EXPECT_THROW(t.reshaped(Shape{4}), ContractViolation);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng a(5), b(5), c(6);
  const Tensor ta = Tensor::randn(Shape{8}, a, 1.0);
  const Tensor tb = Tensor::randn(Shape{8}, b, 1.0);
  const Tensor tc = Tensor::randn(Shape{8}, c, 1.0);
  EXPECT_EQ(max_abs_diff(ta, tb), 0.0);
  EXPECT_GT(max_abs_diff(ta, tc), 0.0);
}

TEST(TensorOps, MatvecMatchesHandComputation) {
  const Tensor w(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor x = Tensor::vector1d({1, 0, -1});
  const Tensor y = matvec(w, x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(TensorOps, MatvecShapeChecks) {
  const Tensor w(Shape{2, 3});
  EXPECT_THROW(matvec(w, Tensor::vector1d({1, 2})), ContractViolation);
  EXPECT_THROW(matvec(Tensor(Shape{6}), Tensor::vector1d({1})), ContractViolation);
}

TEST(TensorOps, ElementwiseArithmetic) {
  const Tensor a = Tensor::vector1d({1, 2, 3});
  const Tensor b = Tensor::vector1d({4, 5, 6});
  EXPECT_DOUBLE_EQ(add(a, b)[1], 7.0);
  EXPECT_DOUBLE_EQ(sub(b, a)[2], 3.0);
  EXPECT_DOUBLE_EQ(scale(a, -2.0)[0], -2.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(TensorOps, Statistics) {
  const Tensor t = Tensor::vector1d({0.0, 0.1, -0.1, 0.6});
  EXPECT_DOUBLE_EQ(min_value(t), -0.1);
  EXPECT_DOUBLE_EQ(max_value(t), 0.6);
  EXPECT_NEAR(mean_value(t), 0.15, 1e-12);
  EXPECT_EQ(argmax(t), 3u);
}

TEST(TensorOps, AdjacentDifferencesMatchPaperExample) {
  // Fig. 1's monitored quantity n_{i+1} - n_i.
  const Tensor t = Tensor::vector1d({0.0, 0.1, -0.1, 0.6});
  const std::vector<double> d = adjacent_differences(t);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_NEAR(d[0], 0.1, 1e-12);
  EXPECT_NEAR(d[1], -0.2, 1e-12);
  EXPECT_NEAR(d[2], 0.7, 1e-12);
}

TEST(TensorOps, AdjacentDifferencesOfScalarIsEmpty) {
  EXPECT_TRUE(adjacent_differences(Tensor::vector1d({1.0})).empty());
}

TEST(TensorOps, EmptyTensorStatisticsThrow) {
  const Tensor t;
  EXPECT_THROW(min_value(t), ContractViolation);
  EXPECT_THROW(argmax(t), ContractViolation);
  EXPECT_THROW(mean_value(t), ContractViolation);
}

}  // namespace
}  // namespace dpv
