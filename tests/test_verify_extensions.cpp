// Tests for the output-range analysis API, the characterizer threshold
// chooser, and LeakyReLU support across the stack (forward, gradients via
// the shared sweep elsewhere, serialization, box/symbolic domains, MILP
// encoding).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "absint/box_domain.hpp"
#include "absint/linear_bounds.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/threshold.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/serialize.hpp"
#include "verify/range_analysis.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

using absint::Interval;

nn::Network make_sum_net() {
  // out = n0 + n1
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->set_parameters(Tensor(Shape{1, 2}, {1.0, 1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d));
  return net;
}

TEST(RangeAnalysis, ExactRangeOfAffineTail) {
  const nn::Network net = make_sum_net();
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, -1.0, 2.0);
  const verify::RangeResult r = verify::output_range(q, 0);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.range.lo, -2.0, 1e-6);
  EXPECT_NEAR(r.range.hi, 4.0, 1e-6);
}

TEST(RangeAnalysis, PairConstraintsShrinkRange) {
  const nn::Network net = make_sum_net();
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, -1.0, 1.0);
  q.pair_bounds.push_back({0, 1, Interval(0.0, 0.0)});  // n1 == n0
  const verify::RangeResult r = verify::output_range(q, 0);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.range.lo, -2.0, 1e-6);
  EXPECT_NEAR(r.range.hi, 2.0, 1e-6);
  // And a functional: n0 - n1 == 0 exactly under the constraint.
  const verify::RangeResult f = verify::output_functional_range(q, {1.0});
  EXPECT_NEAR(f.range.lo, -2.0, 1e-6);
}

TEST(RangeAnalysis, ReluTailMatchesSampling) {
  Rng rng(5);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(3, 5);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{5}));
  auto d2 = std::make_unique<nn::Dense>(5, 2);
  d2->init_he(rng);
  net.add(std::move(d2));

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(3, -1.0, 1.0);
  const verify::RangeResult r = verify::output_range(q, 1);
  ASSERT_TRUE(r.exact);
  // Sampling stays inside and approaches the exact range.
  double lo = 1e100, hi = -1e100;
  for (int i = 0; i < 5000; ++i) {
    Tensor x(Shape{3});
    for (std::size_t j = 0; j < 3; ++j) x[j] = rng.uniform(-1.0, 1.0);
    const double v = net.forward(x)[1];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, r.range.lo - 1e-6);
  EXPECT_LE(hi, r.range.hi + 1e-6);
  EXPECT_LE(r.range.width(), (hi - lo) * 1.8 + 1e-6);  // exactness, not blowup
}

TEST(RangeAnalysis, RejectsBadArguments) {
  const nn::Network net = make_sum_net();
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, 0.0, 1.0);
  EXPECT_THROW(verify::output_range(q, 5), ContractViolation);
  EXPECT_THROW(verify::output_functional_range(q, {0.0}), ContractViolation);
}

/// Identity "perception": features are the inputs themselves.
nn::Network make_identity_net() {
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(1, 1);
  d->set_parameters(Tensor(Shape{1, 1}, {1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d));
  return net;
}

TEST(ThresholdChoice, RespectsGammaBudget) {
  // Characterizer logit = x; positives at x = 0.1..1.0, negatives below.
  const nn::Network perception = make_identity_net();
  const nn::Network charac = make_identity_net();
  train::Dataset data;
  for (int i = 1; i <= 10; ++i)
    data.add(Tensor::vector1d({0.1 * i}), Tensor::vector1d({1.0}));
  for (int i = 1; i <= 10; ++i)
    data.add(Tensor::vector1d({-0.1 * i}), Tensor::vector1d({0.0}));

  // Budget 0: threshold must keep every positive (smallest positive logit).
  const core::ThresholdChoice strict =
      core::choose_characterizer_threshold(perception, 1, charac, data, 0.0);
  EXPECT_NEAR(strict.threshold, 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(strict.gamma, 0.0);
  EXPECT_DOUBLE_EQ(strict.beta, 0.0);

  // Budget 0.1 (= 2 of 20 samples): may sacrifice the two lowest
  // positives, raising the threshold to the third.
  const core::ThresholdChoice relaxed =
      core::choose_characterizer_threshold(perception, 1, charac, data, 0.1);
  EXPECT_NEAR(relaxed.threshold, 0.3, 1e-9);
  EXPECT_NEAR(relaxed.gamma, 0.1, 1e-9);
  EXPECT_GE(relaxed.threshold, strict.threshold);
}

TEST(ThresholdChoice, OverlappingClassesTradeGammaForBeta) {
  const nn::Network perception = make_identity_net();
  const nn::Network charac = make_identity_net();
  train::Dataset data;
  // Positives at {0.2, 0.4, 0.6}, negatives at {0.3, 0.5}: overlap.
  for (const double v : {0.2, 0.4, 0.6}) data.add(Tensor::vector1d({v}), Tensor::vector1d({1.0}));
  for (const double v : {0.3, 0.5}) data.add(Tensor::vector1d({v}), Tensor::vector1d({0.0}));
  const core::ThresholdChoice zero =
      core::choose_characterizer_threshold(perception, 1, charac, data, 0.0);
  EXPECT_NEAR(zero.threshold, 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(zero.beta, 0.4);  // both negatives admitted
  const core::ThresholdChoice one_miss =
      core::choose_characterizer_threshold(perception, 1, charac, data, 0.2);
  EXPECT_NEAR(one_miss.threshold, 0.4, 1e-9);
  EXPECT_DOUBLE_EQ(one_miss.beta, 0.2);  // only the 0.5 negative remains
}

TEST(ThresholdChoice, ValidatesArguments) {
  const nn::Network perception = make_identity_net();
  const nn::Network charac = make_identity_net();
  train::Dataset empty;
  EXPECT_THROW(core::choose_characterizer_threshold(perception, 1, charac, empty, 0.1),
               ContractViolation);
  train::Dataset negatives_only;
  negatives_only.add(Tensor::vector1d({0.0}), Tensor::vector1d({0.0}));
  EXPECT_THROW(
      core::choose_characterizer_threshold(perception, 1, charac, negatives_only, 0.1),
      ContractViolation);
}

TEST(LeakyReLU, ForwardAndClone) {
  nn::LeakyReLU layer(Shape{3}, 0.1);
  const Tensor y = layer.forward(Tensor::vector1d({-2.0, 0.0, 3.0}));
  EXPECT_DOUBLE_EQ(y[0], -0.2);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  auto copy = layer.clone();
  EXPECT_EQ(copy->kind(), nn::LayerKind::kLeakyReLU);
  EXPECT_THROW(nn::LeakyReLU(Shape{1}, 1.5), ContractViolation);
}

TEST(LeakyReLU, SerializationRoundTrip) {
  Rng rng(7);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(3, 3);
  d->init_he(rng);
  net.add(std::move(d));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{3}, 0.05));
  std::stringstream buffer;
  nn::save(net, buffer);
  nn::Network restored = nn::load(buffer);
  const Tensor x = Tensor::vector1d({-1.0, 0.5, 2.0});
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(net.forward(x)[i], restored.forward(x)[i]);
}

TEST(LeakyReLU, BoxAndSymbolicSoundness) {
  Rng rng(9);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(3, 5);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{5}, 0.1));
  auto d2 = std::make_unique<nn::Dense>(5, 2);
  d2->init_he(rng);
  net.add(std::move(d2));

  const absint::Box input_box = absint::uniform_box(3, -1.0, 1.0);
  const absint::Box via_box =
      absint::propagate_box_range(net, input_box, 0, net.layer_count());
  const std::vector<absint::Box> symbolic =
      absint::symbolic_bounds_trace(net, input_box, 0, net.layer_count());
  for (int sample = 0; sample < 200; ++sample) {
    Tensor x(Shape{3});
    for (std::size_t j = 0; j < 3; ++j) x[j] = rng.uniform(-1.0, 1.0);
    const Tensor out = net.forward(x);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_GE(out[i], via_box[i].lo - 1e-9);
      EXPECT_LE(out[i], via_box[i].hi + 1e-9);
      EXPECT_GE(out[i], symbolic.back()[i].lo - 1e-9);
      EXPECT_LE(out[i], symbolic.back()[i].hi + 1e-9);
    }
  }
  // Symbolic never looser than the box.
  EXPECT_LE(absint::box_total_width(symbolic.back()),
            absint::box_total_width(via_box) + 1e-9);
}

class LeakyVerifierSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeakyVerifierSweep, VerdictAgreesWithSampling) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 449 + 13);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(3, 5);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{5}, 0.1));
  auto d2 = std::make_unique<nn::Dense>(5, 1);
  d2->init_he(rng);
  net.add(std::move(d2));

  const absint::Box box = absint::uniform_box(3, -1.0, 1.0);
  double max_seen = -1e100;
  for (int i = 0; i < 300; ++i) {
    Tensor x(Shape{3});
    for (std::size_t j = 0; j < 3; ++j) x[j] = rng.uniform(-1.0, 1.0);
    max_seen = std::max(max_seen, net.forward(x)[0]);
  }
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = box;
  q.risk.output_at_least(0, 1, max_seen + rng.uniform(-0.2, 0.4));

  const verify::VerificationResult r = verify::TailVerifier().verify(q);
  ASSERT_NE(r.verdict, verify::Verdict::kUnknown);
  if (r.verdict == verify::Verdict::kSafe) {
    for (int i = 0; i < 1500; ++i) {
      Tensor x(Shape{3});
      for (std::size_t j = 0; j < 3; ++j) x[j] = rng.uniform(-1.0, 1.0);
      ASSERT_LT(net.forward(x)[0], q.risk.inequalities()[0].rhs + 1e-7)
          << "seed " << GetParam();
    }
  } else {
    EXPECT_TRUE(r.counterexample_validated) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLeakyTails, LeakyVerifierSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace dpv
