// Serialization round-trip tests for every layer kind and malformed-input
// rejection, plus fingerprint stability across the round trip — the
// delta-reuse layer keys persisted artifacts by network fingerprint, so
// a save/load cycle must neither change it nor collide after a retrain.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/perception_model.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pool2d.hpp"
#include "nn/serialize.hpp"
#include "tensor/tensor_ops.hpp"
#include "verify/encoding_cache.hpp"

namespace dpv::nn {
namespace {

Network make_mixed_network(Rng& rng) {
  Network net;
  auto conv = std::make_unique<Conv2D>(1, 4, 4, 2, 3, 1, 1);
  conv->init_he(rng);
  net.add(std::move(conv));
  net.add(std::make_unique<ReLU>(Shape{2, 4, 4}));
  net.add(std::make_unique<MaxPool2D>(2, 4, 4, 2));
  net.add(std::make_unique<Flatten>(Shape{2, 2, 2}));
  auto dense = std::make_unique<Dense>(8, 4);
  dense->init_he(rng);
  net.add(std::move(dense));
  auto bn = std::make_unique<BatchNorm>(4);
  bn->set_affine(Tensor::vector1d({1.0, 2.0, 0.5, 1.5}),
                 Tensor::vector1d({0.1, -0.1, 0.0, 0.2}));
  bn->set_statistics(Tensor::vector1d({0.2, -0.3, 0.0, 0.1}),
                     Tensor::vector1d({1.0, 2.0, 0.5, 1.2}));
  net.add(std::move(bn));
  net.add(std::make_unique<Tanh>(Shape{4}));
  auto out = std::make_unique<Dense>(4, 2);
  out->init_he(rng);
  net.add(std::move(out));
  net.add(std::make_unique<Sigmoid>(Shape{2}));
  return net;
}

TEST(Serialize, RoundTripPreservesBehaviourBitExactly) {
  Rng rng(31);
  Network original = make_mixed_network(rng);
  std::stringstream buffer;
  save(original, buffer);
  Network restored = load(buffer);

  ASSERT_EQ(restored.layer_count(), original.layer_count());
  Rng probe_rng(77);
  for (int probe = 0; probe < 5; ++probe) {
    const Tensor x = Tensor::randn(Shape{1, 4, 4}, probe_rng, 1.0);
    EXPECT_EQ(max_abs_diff(original.forward(x), restored.forward(x)), 0.0);
  }
}

TEST(Serialize, RoundTripPerceptionFactoryModel) {
  Rng rng(5);
  data::PerceptionConfig config;
  config.render.width = 16;
  config.render.height = 8;
  config.embedding = 8;
  config.features = 6;
  config.tail_hidden = 6;
  data::PerceptionModel model = data::make_perception_network(config, rng);
  std::stringstream buffer;
  save(model.network, buffer);
  Network restored = load(buffer);
  const Tensor x = Tensor::randn(Shape{1, 8, 16}, rng, 0.3);
  EXPECT_EQ(max_abs_diff(model.network.forward(x), restored.forward(x)), 0.0);
}

TEST(Serialize, AvgPoolRoundTrip) {
  Network net;
  net.add(std::make_unique<AvgPool2D>(1, 4, 4, 2));
  std::stringstream buffer;
  save(net, buffer);
  Network restored = load(buffer);
  EXPECT_EQ(restored.layer(0).kind(), LayerKind::kAvgPool2D);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(9);
  Network net;
  auto dense = std::make_unique<Dense>(3, 3);
  dense->init_he(rng);
  net.add(std::move(dense));
  const std::string path = ::testing::TempDir() + "/dpv_net.txt";
  save_file(net, path);
  Network restored = load_file(path);
  const Tensor x = Tensor::vector1d({0.1, -0.2, 0.3});
  EXPECT_EQ(max_abs_diff(net.forward(x), restored.forward(x)), 0.0);
}

// ------------------------------------------------ fingerprint stability

TEST(Fingerprint, StableAcrossSerializationRoundTrip) {
  Rng rng(31);
  Network original = make_mixed_network(rng);
  std::stringstream buffer;
  save(original, buffer);
  Network restored = load(buffer);

  // The fingerprint hashes architecture + parameter bits, both of which
  // the hexfloat stream preserves exactly — so the persisted model must
  // key the same artifact bundle as the in-memory one, from any layer.
  for (std::size_t from = 0; from < original.layer_count(); ++from)
    EXPECT_EQ(verify::tail_fingerprint(original, from),
              verify::tail_fingerprint(restored, from))
        << "from layer " << from;
}

TEST(Fingerprint, EpsilonWeightChangeAltersFingerprintAndVersionedKey) {
  Rng rng(31);
  Network original = make_mixed_network(rng);
  Network nudged = original.clone();
  EXPECT_EQ(verify::tail_fingerprint(original, 0), verify::tail_fingerprint(nudged, 0));

  // The smallest representable retrain: one weight, one ulp-scale nudge.
  auto& dense = dynamic_cast<Dense&>(nudged.layer(4));
  Tensor w = dense.weight();
  Tensor b = dense.bias();
  w[0] += 1e-12;
  dense.set_parameters(std::move(w), std::move(b));

  const std::size_t base_fp = verify::tail_fingerprint(original, 0);
  const std::size_t nudged_fp = verify::tail_fingerprint(nudged, 0);
  EXPECT_NE(base_fp, nudged_fp);
  // Layers strictly after the edit still fingerprint identically.
  EXPECT_EQ(verify::tail_fingerprint(original, 5), verify::tail_fingerprint(nudged, 5));

  // The versioned cache identity separates base, retrained, and
  // chain-of-retrains — and never degenerates to the reserved 0.
  const std::size_t base_key = verify::versioned_cache_key(base_fp, {});
  const std::size_t delta_key = verify::versioned_cache_key(base_fp, {nudged_fp});
  EXPECT_NE(base_key, 0u);
  EXPECT_NE(delta_key, 0u);
  EXPECT_NE(base_key, delta_key);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer("not-a-network 1\nlayers 0\n");
  EXPECT_THROW(load(buffer), ContractViolation);
}

TEST(Serialize, RejectsUnsupportedVersion) {
  std::stringstream buffer("dpv-network 99\nlayers 0\n");
  EXPECT_THROW(load(buffer), ContractViolation);
}

TEST(Serialize, RejectsUnknownLayerKind) {
  std::stringstream buffer("dpv-network 1\nlayers 1\nwavelet 4\n");
  EXPECT_THROW(load(buffer), ContractViolation);
}

TEST(Serialize, RejectsTruncatedTensor) {
  Rng rng(4);
  Network net;
  auto dense = std::make_unique<Dense>(2, 2);
  dense->init_he(rng);
  net.add(std::move(dense));
  std::stringstream buffer;
  save(net, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);  // chop the payload
  std::stringstream truncated(text);
  EXPECT_THROW(load(truncated), ContractViolation);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_file("/nonexistent/dpv.txt"), ContractViolation);
}

}  // namespace
}  // namespace dpv::nn
