// Serialization round-trip tests for every layer kind and malformed-input
// rejection.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/perception_model.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pool2d.hpp"
#include "nn/serialize.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::nn {
namespace {

Network make_mixed_network(Rng& rng) {
  Network net;
  auto conv = std::make_unique<Conv2D>(1, 4, 4, 2, 3, 1, 1);
  conv->init_he(rng);
  net.add(std::move(conv));
  net.add(std::make_unique<ReLU>(Shape{2, 4, 4}));
  net.add(std::make_unique<MaxPool2D>(2, 4, 4, 2));
  net.add(std::make_unique<Flatten>(Shape{2, 2, 2}));
  auto dense = std::make_unique<Dense>(8, 4);
  dense->init_he(rng);
  net.add(std::move(dense));
  auto bn = std::make_unique<BatchNorm>(4);
  bn->set_affine(Tensor::vector1d({1.0, 2.0, 0.5, 1.5}),
                 Tensor::vector1d({0.1, -0.1, 0.0, 0.2}));
  bn->set_statistics(Tensor::vector1d({0.2, -0.3, 0.0, 0.1}),
                     Tensor::vector1d({1.0, 2.0, 0.5, 1.2}));
  net.add(std::move(bn));
  net.add(std::make_unique<Tanh>(Shape{4}));
  auto out = std::make_unique<Dense>(4, 2);
  out->init_he(rng);
  net.add(std::move(out));
  net.add(std::make_unique<Sigmoid>(Shape{2}));
  return net;
}

TEST(Serialize, RoundTripPreservesBehaviourBitExactly) {
  Rng rng(31);
  Network original = make_mixed_network(rng);
  std::stringstream buffer;
  save(original, buffer);
  Network restored = load(buffer);

  ASSERT_EQ(restored.layer_count(), original.layer_count());
  Rng probe_rng(77);
  for (int probe = 0; probe < 5; ++probe) {
    const Tensor x = Tensor::randn(Shape{1, 4, 4}, probe_rng, 1.0);
    EXPECT_EQ(max_abs_diff(original.forward(x), restored.forward(x)), 0.0);
  }
}

TEST(Serialize, RoundTripPerceptionFactoryModel) {
  Rng rng(5);
  data::PerceptionConfig config;
  config.render.width = 16;
  config.render.height = 8;
  config.embedding = 8;
  config.features = 6;
  config.tail_hidden = 6;
  data::PerceptionModel model = data::make_perception_network(config, rng);
  std::stringstream buffer;
  save(model.network, buffer);
  Network restored = load(buffer);
  const Tensor x = Tensor::randn(Shape{1, 8, 16}, rng, 0.3);
  EXPECT_EQ(max_abs_diff(model.network.forward(x), restored.forward(x)), 0.0);
}

TEST(Serialize, AvgPoolRoundTrip) {
  Network net;
  net.add(std::make_unique<AvgPool2D>(1, 4, 4, 2));
  std::stringstream buffer;
  save(net, buffer);
  Network restored = load(buffer);
  EXPECT_EQ(restored.layer(0).kind(), LayerKind::kAvgPool2D);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(9);
  Network net;
  auto dense = std::make_unique<Dense>(3, 3);
  dense->init_he(rng);
  net.add(std::move(dense));
  const std::string path = ::testing::TempDir() + "/dpv_net.txt";
  save_file(net, path);
  Network restored = load_file(path);
  const Tensor x = Tensor::vector1d({0.1, -0.2, 0.3});
  EXPECT_EQ(max_abs_diff(net.forward(x), restored.forward(x)), 0.0);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer("not-a-network 1\nlayers 0\n");
  EXPECT_THROW(load(buffer), ContractViolation);
}

TEST(Serialize, RejectsUnsupportedVersion) {
  std::stringstream buffer("dpv-network 99\nlayers 0\n");
  EXPECT_THROW(load(buffer), ContractViolation);
}

TEST(Serialize, RejectsUnknownLayerKind) {
  std::stringstream buffer("dpv-network 1\nlayers 1\nwavelet 4\n");
  EXPECT_THROW(load(buffer), ContractViolation);
}

TEST(Serialize, RejectsTruncatedTensor) {
  Rng rng(4);
  Network net;
  auto dense = std::make_unique<Dense>(2, 2);
  dense->init_he(rng);
  net.add(std::move(dense));
  std::stringstream buffer;
  save(net, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);  // chop the payload
  std::stringstream truncated(text);
  EXPECT_THROW(load(truncated), ContractViolation);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_file("/nonexistent/dpv.txt"), ContractViolation);
}

}  // namespace
}  // namespace dpv::nn
