// Parity and soundness suite for the shared tail encoding cache and the
// zonotope-seeded bound tightening:
//   * stamped-out problems are bit-identical to fresh encodes — same
//     verdicts, counterexamples and report tables, across campaign
//     thread counts and caching modes,
//   * zonotope-seeded boxes always contain concrete forward samples and
//     are never looser than interval propagation (so kZonotope can only
//     reduce the binary count),
//   * order reduction stays sound at any generator budget,
//   * range analysis reuses one encoding for both directions.
#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "absint/box_domain.hpp"
#include "absint/zonotope.hpp"
#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/encoding_cache.hpp"
#include "verify/range_analysis.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

nn::Network make_relu_tail(std::size_t width, std::size_t depth, Rng& rng) {
  nn::Network net;
  std::size_t in_n = width;
  for (std::size_t d = 0; d < depth; ++d) {
    auto dense = std::make_unique<nn::Dense>(in_n, width);
    dense->init_he(rng);
    net.add(std::move(dense));
    net.add(std::make_unique<nn::ReLU>(Shape{width}));
    in_n = width;
  }
  auto out = std::make_unique<nn::Dense>(in_n, 2);
  out->init_he(rng);
  net.add(std::move(out));
  return net;
}

nn::Network make_characterizer(std::size_t width, Rng& rng) {
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(width, 1);
  dense->init_he(rng);
  net.add(std::move(dense));
  return net;
}

verify::VerificationQuery make_query(const nn::Network& net, std::size_t width,
                                     double threshold) {
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(width, -1.0, 1.0);
  q.risk.output_at_least(0, 2, threshold);
  return q;
}

// ------------------------------------------------- stamp-out bit parity

TEST(SharedTailEncoding, StampedProblemMatchesFreshEncode) {
  Rng rng(7);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network charac = make_characterizer(6, rng);
  verify::VerificationQuery q = make_query(net, 6, 0.2);
  q.characterizer = &charac;
  q.characterizer_threshold = 0.1;
  for (std::size_t i = 0; i + 1 < 6; ++i)
    q.diff_bounds.push_back(absint::Interval(-1.5, 1.5));

  const verify::EncodeOptions options;
  const verify::TailEncoding fresh = verify::encode_tail_query(q, options);
  const verify::SharedTailEncoding shared(q, options);
  const verify::TailEncoding stamped = shared.instantiate(q);

  EXPECT_EQ(fresh.problem.variable_count(), stamped.problem.variable_count());
  EXPECT_EQ(fresh.problem.relaxation().row_count(), stamped.problem.relaxation().row_count());
  EXPECT_EQ(fresh.input_vars, stamped.input_vars);
  EXPECT_EQ(fresh.output_vars, stamped.output_vars);
  EXPECT_EQ(fresh.characterizer_logit_var, stamped.characterizer_logit_var);
  EXPECT_EQ(fresh.stats.binaries, stamped.stats.binaries);
  EXPECT_EQ(fresh.stats.stable_relus, stamped.stats.stable_relus);
  // Row-for-row identity of the stamped relaxation.
  const auto& fr = fresh.problem.relaxation().rows();
  const auto& sr = stamped.problem.relaxation().rows();
  ASSERT_EQ(fr.size(), sr.size());
  for (std::size_t r = 0; r < fr.size(); ++r) {
    ASSERT_EQ(fr[r].terms.size(), sr[r].terms.size()) << "row " << r;
    EXPECT_EQ(fr[r].rhs, sr[r].rhs) << "row " << r;
    for (std::size_t t = 0; t < fr[r].terms.size(); ++t) {
      EXPECT_EQ(fr[r].terms[t].var, sr[r].terms[t].var);
      EXPECT_EQ(fr[r].terms[t].coeff, sr[r].terms[t].coeff);
    }
  }
  EXPECT_TRUE(stamped.stats.from_cache);
  EXPECT_EQ(stamped.stats.reused_variables, shared.base_variables());
  EXPECT_EQ(stamped.stats.reused_rows, shared.base_rows());
  EXPECT_FALSE(fresh.stats.from_cache);
}

TEST(SharedTailEncoding, CachedVerifierReproducesVerdictAndCounterexample) {
  Rng rng(11);
  const nn::Network net = make_relu_tail(8, 2, rng);
  auto cache = std::make_shared<verify::EncodingCache>();

  verify::TailVerifierOptions fresh_options;
  verify::TailVerifierOptions cached_options;
  cached_options.encoding_cache = cache;

  // A sweep of risk thresholds over one tail: the campaign shape.
  for (const double threshold : {-2.0, -0.5, 0.0, 0.5, 5.0, 50.0}) {
    const verify::VerificationQuery q = make_query(net, 8, threshold);
    const verify::VerificationResult fresh = verify::TailVerifier(fresh_options).verify(q);
    const verify::VerificationResult cached = verify::TailVerifier(cached_options).verify(q);
    ASSERT_EQ(fresh.verdict, cached.verdict) << "threshold " << threshold;
    if (fresh.verdict == verify::Verdict::kUnsafe) {
      ASSERT_EQ(fresh.counterexample_activation.numel(),
                cached.counterexample_activation.numel());
      for (std::size_t i = 0; i < fresh.counterexample_activation.numel(); ++i)
        EXPECT_EQ(fresh.counterexample_activation[i], cached.counterexample_activation[i]);
      EXPECT_TRUE(cached.counterexample_validated);
    }
    EXPECT_EQ(fresh.milp_nodes, cached.milp_nodes) << "threshold " << threshold;
  }
  const verify::EncodingCache::Stats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_GT(stats.reused_rows, 0u);
  EXPECT_GT(stats.reused_variables, 0u);
}

TEST(EncodingCache, DistinctAbstractionsGetDistinctBases) {
  Rng rng(13);
  const nn::Network net = make_relu_tail(4, 1, rng);
  verify::EncodingCache cache;
  const verify::EncodeOptions options;

  const verify::VerificationQuery a = make_query(net, 4, 0.0);
  verify::VerificationQuery b = make_query(net, 4, 0.0);
  b.input_box = absint::uniform_box(4, -0.5, 0.5);

  cache.get_or_build(a, options);
  cache.get_or_build(b, options);  // different box: new key
  cache.get_or_build(a, options);  // back to the first: hit
  verify::EncodeOptions zono = options;
  zono.bounds = verify::BoundMethod::kZonotope;
  cache.get_or_build(a, zono);  // different bound method: new key

  const verify::EncodingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(EncodingCache, MutatedNetworkAtSameAddressIsAMissNotAStaleHit) {
  // The key carries a weight fingerprint alongside the network pointer:
  // changing the weights in place (or reallocating another network at
  // the same address) must rebuild the base, never serve the stale one.
  Rng rng(17);
  nn::Network net = make_relu_tail(4, 1, rng);
  verify::EncodingCache cache;
  const verify::EncodeOptions options;
  const verify::VerificationQuery q = make_query(net, 4, 0.0);

  cache.get_or_build(q, options);
  auto& dense = static_cast<nn::Dense&>(net.layer(0));
  Tensor weight = dense.weight();
  weight[0] += 1.0;
  dense.set_parameters(weight, dense.bias());
  cache.get_or_build(q, options);

  const verify::EncodingCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

// ------------------------------------------------------ campaign parity

train::Dataset labelled_cloud(Rng& rng, std::size_t count) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({x0 > 0.0 ? 1.0 : 0.0}));
  }
  return data;
}

nn::Network make_small_net(Rng& rng) {
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(2, 4);
  dense->init_he(rng);
  net.add(std::move(dense));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto readout = std::make_unique<nn::Dense>(4, 2);
  readout->init_he(rng);
  net.add(std::move(readout));
  return net;
}

std::string strip_timings(std::string text) {
  const std::regex timing("(encode=|solve=|, )[0-9.e+-]+s");
  return std::regex_replace(text, timing, "$1<t>s");
}

TEST(EncodingCacheCampaign, FreshAndCachedPathsAreBitIdenticalAcrossThreads) {
  Rng rng(101);
  const nn::Network net = make_small_net(rng);

  // Entries sharing one training set (same ODD images, different risk
  // conditions): the same abstraction, so the tail encoding is shared.
  const train::Dataset train_set = labelled_cloud(rng, 60);
  const train::Dataset val_set = labelled_cloud(rng, 30);
  std::vector<core::CampaignEntry> entries;
  verify::RiskSpec unreachable("far-out");
  unreachable.output_at_least(0, 2, 1e6);
  verify::RiskSpec reachable("reachable");
  reachable.output_at_most(0, 2, 1e6);
  for (int i = 0; i < 3; ++i)
    entries.push_back({"x0-positive-" + std::to_string(i), train_set, val_set,
                       i % 2 == 0 ? unreachable : reachable});

  core::WorkflowConfig config;
  config.characterizer.trainer.epochs = 20;
  // The cache-accounting assertions need every entry to reach the
  // encoder; the staged pipeline would settle these easy queries first.
  config.falsify_first = false;

  std::vector<std::string> tables;
  std::vector<core::CampaignReport> kept;
  for (const bool cached : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      config.share_tail_encodings = cached;
      config.campaign_threads = threads;
      core::CampaignReport report = core::run_campaign(net, 2, entries, config);
      tables.push_back(report.format_table());
      kept.push_back(std::move(report));
    }
  }
  // Verdict tables must be bit-identical across caching modes and
  // thread counts (no timing fields live in format_table).
  for (std::size_t i = 1; i < tables.size(); ++i) EXPECT_EQ(tables[0], tables[i]) << i;

  // Per-entry full reports (including counterexamples) match too, up to
  // wall-clock fields.
  for (std::size_t run = 1; run < kept.size(); ++run) {
    ASSERT_EQ(kept[0].reports.size(), kept[run].reports.size());
    for (std::size_t e = 0; e < kept[0].reports.size(); ++e) {
      EXPECT_EQ(strip_timings(kept[0].reports[e].to_string()),
                strip_timings(kept[run].reports[e].to_string()))
          << "run " << run << " entry " << e;
      const auto& fresh_v = kept[0].reports[e].safety.verification;
      const auto& other_v = kept[run].reports[e].safety.verification;
      ASSERT_EQ(fresh_v.counterexample_activation.numel(),
                other_v.counterexample_activation.numel());
      for (std::size_t i = 0; i < fresh_v.counterexample_activation.numel(); ++i)
        EXPECT_EQ(fresh_v.counterexample_activation[i], other_v.counterexample_activation[i]);
    }
  }

  // Fresh runs never touch a cache; cached runs account one base per
  // touched key and the rest as hits.
  EXPECT_EQ(kept[0].encoding_cache_hits + kept[0].encoding_cache_misses, 0u);
  EXPECT_EQ(kept[2].encoding_cache_hits + kept[2].encoding_cache_misses, entries.size());
  EXPECT_EQ(kept[2].encoding_cache_misses, 1u);  // serial: one frozen base
  EXPECT_EQ(kept[2].encoding_cache_hits, entries.size() - 1);
  EXPECT_GT(kept[2].encoding_reused_rows, 0u);
  EXPECT_NE(kept[2].format_encoding_summary().find("cache 2 hits"), std::string::npos)
      << kept[2].format_encoding_summary();
  EXPECT_EQ(kept[3].encoding_cache_hits + kept[3].encoding_cache_misses, entries.size());
}

// --------------------------------------- zonotope soundness + tightness

TEST(ZonotopeBounds, TraceContainsConcreteSamplesAndRefinesIntervals) {
  for (const unsigned seed : {3u, 17u, 29u}) {
    Rng rng(seed);
    const std::size_t width = 6;
    const nn::Network net = make_relu_tail(width, 2, rng);
    const absint::Box input_box = absint::uniform_box(width, -1.0, 1.0);

    const std::vector<absint::Box> zono_trace =
        absint::propagate_zonotope_trace(net, input_box, 0, net.layer_count());
    const std::vector<absint::Box> interval_trace =
        absint::propagate_box_trace(net, input_box, 0, net.layer_count());
    ASSERT_EQ(zono_trace.size(), net.layer_count());
    ASSERT_EQ(interval_trace.size(), net.layer_count());

    // Zonotope boxes are never looser than interval boxes.
    for (std::size_t l = 0; l < zono_trace.size(); ++l) {
      ASSERT_EQ(zono_trace[l].size(), interval_trace[l].size());
      for (std::size_t i = 0; i < zono_trace[l].size(); ++i) {
        EXPECT_GE(zono_trace[l][i].lo, interval_trace[l][i].lo - 1e-9)
            << "layer " << l << " neuron " << i;
        EXPECT_LE(zono_trace[l][i].hi, interval_trace[l][i].hi + 1e-9)
            << "layer " << l << " neuron " << i;
      }
    }

    // Soundness: every concretely propagated sample stays inside the
    // zonotope box at every layer.
    for (int s = 0; s < 200; ++s) {
      Tensor x(Shape{width});
      for (std::size_t i = 0; i < width; ++i) x[i] = rng.uniform(-1.0, 1.0);
      Tensor v = x;
      for (std::size_t l = 0; l < net.layer_count(); ++l) {
        v = net.layer(l).forward(v);
        for (std::size_t i = 0; i < v.numel(); ++i) {
          EXPECT_GE(v[i], zono_trace[l][i].lo - 1e-7) << "layer " << l;
          EXPECT_LE(v[i], zono_trace[l][i].hi + 1e-7) << "layer " << l;
        }
      }
    }
  }
}

TEST(ZonotopeBounds, OrderReductionStaysSoundAtAnyBudget) {
  Rng rng(41);
  const std::size_t width = 8;
  const nn::Network net = make_relu_tail(width, 3, rng);
  const absint::Box input_box = absint::uniform_box(width, -1.0, 1.0);

  for (const std::size_t budget : {std::size_t{2}, std::size_t{8}, std::size_t{12}}) {
    const absint::Zonotope reduced = absint::propagate_zonotope_range(
        net, absint::Zonotope::from_box(input_box), 0, net.layer_count(), budget);
    EXPECT_LE(reduced.generator_count(), std::max(budget, width));
    const absint::Box box = reduced.to_box();
    for (int s = 0; s < 100; ++s) {
      Tensor x(Shape{width});
      for (std::size_t i = 0; i < width; ++i) x[i] = rng.uniform(-1.0, 1.0);
      const Tensor out = net.forward(x);
      for (std::size_t i = 0; i < out.numel(); ++i) {
        EXPECT_GE(out[i], box[i].lo - 1e-7) << "budget " << budget;
        EXPECT_LE(out[i], box[i].hi + 1e-7) << "budget " << budget;
      }
    }
  }

  // reduce() preserves the per-dimension concretization radius exactly.
  const absint::Zonotope full = absint::propagate_zonotope_range(
      net, absint::Zonotope::from_box(input_box), 0, net.layer_count());
  const absint::Box before = full.to_box();
  const absint::Box after = full.reduce(4).to_box();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i].lo, after[i].lo, 1e-9);
    EXPECT_NEAR(before[i].hi, after[i].hi, 1e-9);
  }
}

TEST(ZonotopeBounds, EncoderNeverAddsBinariesOverIntervalAndKeepsVerdicts) {
  for (const unsigned seed : {5u, 23u}) {
    Rng rng(seed);
    const std::size_t width = 8;
    const nn::Network net = make_relu_tail(width, 2, rng);
    for (const double threshold : {-1.0, 0.5, 20.0}) {
      const verify::VerificationQuery q = make_query(net, width, threshold);

      verify::TailVerifierOptions interval_opts;
      verify::TailVerifierOptions zono_opts;
      zono_opts.encode.bounds = verify::BoundMethod::kZonotope;

      const verify::VerificationResult ri = verify::TailVerifier(interval_opts).verify(q);
      const verify::VerificationResult rz = verify::TailVerifier(zono_opts).verify(q);
      EXPECT_LE(rz.encoding.binaries, ri.encoding.binaries) << "seed " << seed;
      EXPECT_GE(rz.encoding.stable_relus, ri.encoding.stable_relus) << "seed " << seed;
      EXPECT_EQ(ri.verdict, rz.verdict) << "seed " << seed << " threshold " << threshold;
    }
  }
}

TEST(ZonotopeBounds, LeakyReluTailUsesZonotopeBounds) {
  // The zonotope domain covers LeakyReLU (chord transformer): the
  // encoder no longer falls back to interval bounds, and the
  // trace-intersected pre-pass can only be at least as tight.
  Rng rng(59);
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(4, 4);
  dense->init_he(rng);
  net.add(std::move(dense));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{4}, 0.1));
  auto out = std::make_unique<nn::Dense>(4, 2);
  out->init_he(rng);
  net.add(std::move(out));

  EXPECT_TRUE(absint::zonotope_supported(net, 0, net.layer_count()));
  const verify::VerificationQuery q = make_query(net, 4, 0.0);
  verify::EncodeOptions zono;
  zono.bounds = verify::BoundMethod::kZonotope;
  const verify::TailEncoding enc_zono = verify::encode_tail_query(q, zono);
  const verify::TailEncoding enc_interval = verify::encode_tail_query(q, {});
  // Tighter bounds can stabilize activations, never the reverse.
  EXPECT_LE(enc_zono.stats.binaries, enc_interval.stats.binaries);
  EXPECT_GE(enc_zono.stats.stable_relus, enc_interval.stats.stable_relus);

  // Verdict parity across bound methods on the same query.
  verify::TailVerifierOptions interval_opts;
  verify::TailVerifierOptions zono_opts;
  zono_opts.encode.bounds = verify::BoundMethod::kZonotope;
  const verify::VerificationResult ri = verify::TailVerifier(interval_opts).verify(q);
  const verify::VerificationResult rz = verify::TailVerifier(zono_opts).verify(q);
  EXPECT_EQ(ri.verdict, rz.verdict);
}

// -------------------------------------------------- range analysis

TEST(RangeAnalysis, SingleEncodingServesBothDirectionsAndCache) {
  Rng rng(31);
  const nn::Network net = make_relu_tail(6, 1, rng);
  verify::VerificationQuery q = make_query(net, 6, 0.0);

  const verify::RangeResult plain = verify::output_range(q, 0);

  verify::RangeAnalysisOptions cached_options;
  cached_options.encoding_cache = std::make_shared<verify::EncodingCache>();
  const verify::RangeResult c1 = verify::output_range(q, 0, cached_options);
  const verify::RangeResult c2 = verify::output_range(q, 0, cached_options);

  EXPECT_EQ(plain.range.lo, c1.range.lo);
  EXPECT_EQ(plain.range.hi, c1.range.hi);
  EXPECT_EQ(c1.range.lo, c2.range.lo);
  EXPECT_EQ(c1.range.hi, c2.range.hi);
  EXPECT_TRUE(plain.exact);
  const verify::EncodingCache::Stats stats = cached_options.encoding_cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // Sanity: concrete outputs stay inside the computed range.
  for (int s = 0; s < 50; ++s) {
    Tensor x(Shape{6});
    for (std::size_t i = 0; i < 6; ++i) x[i] = rng.uniform(-1.0, 1.0);
    const double out = net.forward(x)[0];
    EXPECT_GE(out, plain.range.lo - 1e-6);
    EXPECT_LE(out, plain.range.hi + 1e-6);
  }
}

// ----------------------------------------------- encode-vs-solve stats

TEST(VerificationResult, SummaryReportsEncodeAndSolveSeconds) {
  Rng rng(47);
  const nn::Network net = make_relu_tail(4, 1, rng);
  const verify::VerificationResult r =
      verify::TailVerifier().verify(make_query(net, 4, 100.0));
  EXPECT_GE(r.encode_seconds, 0.0);
  EXPECT_GT(r.encoding.encode_seconds, 0.0);
  EXPECT_NE(r.summary().find("encode="), std::string::npos) << r.summary();
  EXPECT_NE(r.summary().find("solve="), std::string::npos) << r.summary();
}

}  // namespace
}  // namespace dpv
