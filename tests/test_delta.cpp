// Delta re-certification suite (src/verify/delta.hpp): one dedicated
// soundness/parity test per reuse class, plus the artifact bundle's
// persistence and identity contracts.
//   * Bound traces — exact reuse reproduces the encoding bit-identically
//     (rows AND column bounds); widened reuse always contains the
//     updated model's freshly realized boxes, and verdicts match a cold
//     run either way.
//   * Root-cut pools — recycled pools preserve verdicts; the partial
//     path keeps only prefix-local ReLU-split cuts, and the
//     full-identity path is additionally gated on the query fingerprint
//     so Gomory cuts never cross a query change.
//   * Pseudocost priors — order-only: verdicts match with priors seeded.
//   * Per-query bound refresh — column-bound tightening preserves
//     verdicts and counterexamples.
//   * Bundle save/load round-trips bit-exactly (hexfloat stream);
//     versioned keys are nonzero and chain-order sensitive.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "absint/box_domain.hpp"
#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/diff.hpp"
#include "verify/delta.hpp"
#include "verify/encoding_cache.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

nn::Network make_relu_tail(std::size_t width, std::size_t depth, Rng& rng) {
  nn::Network net;
  std::size_t in_n = width;
  for (std::size_t d = 0; d < depth; ++d) {
    auto dense = std::make_unique<nn::Dense>(in_n, width);
    dense->init_he(rng);
    net.add(std::move(dense));
    net.add(std::make_unique<nn::ReLU>(Shape{width}));
    in_n = width;
  }
  auto out = std::make_unique<nn::Dense>(in_n, 2);
  out->init_he(rng);
  net.add(std::move(out));
  return net;
}

nn::Network make_characterizer(std::size_t width, Rng& rng) {
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(width, 1);
  dense->init_he(rng);
  net.add(std::move(dense));
  return net;
}

verify::VerificationQuery make_query(const nn::Network& net, std::size_t width,
                                     double threshold) {
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(width, -1.0, 1.0);
  q.risk.output_at_least(0, 2, threshold);
  return q;
}

/// The "retrain": nudge one Dense layer's weights by +-eps.
nn::Network perturb_dense(const nn::Network& net, std::size_t layer_index, double eps) {
  nn::Network copy = net.clone();
  auto& dense = dynamic_cast<nn::Dense&>(copy.layer(layer_index));
  Tensor w = dense.weight();
  Tensor b = dense.bias();
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] += eps * (static_cast<double>(i % 3) - 1.0);
  dense.set_parameters(std::move(w), std::move(b));
  return copy;
}

/// Harvests one cold certification into a (bundle, entry) pair.
struct HarvestedBase {
  verify::DeltaArtifacts bundle;
  verify::VerificationResult result;
};

HarvestedBase certify_base(const nn::Network& net, const verify::VerificationQuery& q,
                           verify::TailVerifierOptions options, std::size_t query_key) {
  HarvestedBase base;
  verify::DeltaHarvest harvest;
  options.harvest = &harvest;
  base.result = verify::TailVerifier(options).verify(q);
  EXPECT_TRUE(harvest.captured);
  base.bundle = verify::make_base_artifacts(net, q.attach_layer);
  base.bundle.upsert(
      verify::harvest_to_artifacts(query_key, q, base.result, std::move(harvest)));
  return base;
}

void expect_same_verdict(const verify::VerificationResult& cold,
                         const verify::VerificationResult& delta, const char* label) {
  ASSERT_EQ(cold.verdict, delta.verdict) << label;
  if (cold.verdict == verify::Verdict::kUnsafe) {
    EXPECT_TRUE(delta.counterexample_validated) << label;
  }
}

// ---------------------------------------------------- versioned identity

TEST(DeltaIdentity, VersionedKeysAreNonzeroAndChainOrderSensitive) {
  Rng rng(3);
  const nn::Network net = make_relu_tail(4, 1, rng);
  verify::DeltaArtifacts base = verify::make_base_artifacts(net, 0);
  EXPECT_NE(base.versioned_key(), 0u);

  verify::DeltaArtifacts ab = base;
  ab.delta_chain = {11u, 22u};
  verify::DeltaArtifacts ba = base;
  ba.delta_chain = {22u, 11u};
  EXPECT_NE(ab.versioned_key(), ba.versioned_key());
  EXPECT_NE(ab.versioned_key(), base.versioned_key());

  // advance_artifacts keeps the original base and extends the chain.
  const nn::Network updated = perturb_dense(net, 0, 1e-3);
  const verify::DeltaArtifacts next = verify::advance_artifacts(base, updated);
  EXPECT_EQ(next.base_fingerprint, base.base_fingerprint);
  ASSERT_EQ(next.delta_chain.size(), 1u);
  EXPECT_EQ(next.delta_chain[0], verify::tail_fingerprint(updated, 0));
  EXPECT_NE(next.versioned_key(), base.versioned_key());
}

TEST(DeltaIdentity, QueryFingerprintTracksQueryContent) {
  Rng rng(5);
  const nn::Network net = make_relu_tail(4, 1, rng);
  const nn::Network charac = make_characterizer(4, rng);
  verify::VerificationQuery q = make_query(net, 4, 0.3);
  q.characterizer = &charac;
  q.characterizer_threshold = 0.1;
  const std::size_t fp = verify::delta_query_fingerprint(q);
  EXPECT_NE(fp, 0u);
  EXPECT_EQ(fp, verify::delta_query_fingerprint(q));  // deterministic

  verify::VerificationQuery threshold = q;
  threshold.characterizer_threshold = 0.2;
  EXPECT_NE(verify::delta_query_fingerprint(threshold), fp);

  verify::VerificationQuery risk = q;
  risk.risk = verify::RiskSpec("other");
  risk.risk.output_at_least(0, 2, 0.7);
  EXPECT_NE(verify::delta_query_fingerprint(risk), fp);

  verify::VerificationQuery diff = q;
  diff.diff_bounds.push_back(absint::Interval(-1.0, 1.0));
  EXPECT_NE(verify::delta_query_fingerprint(diff), fp);
}

// ------------------------------------------------------ bundle round trip

TEST(DeltaArtifactsFile, RoundTripsBitExactly) {
  verify::DeltaArtifacts bundle;
  bundle.base_fingerprint = 0xdeadbeefcafef00dULL;
  bundle.delta_chain = {7u, 0xffffffffffffffffULL};
  bundle.attach_layer = 3;

  verify::QueryArtifacts entry;
  entry.query_key = 42;
  entry.verdict = verify::Verdict::kUnsafe;
  entry.query_fingerprint = 0xabad1deaULL;
  // Doubles chosen to break decimal round-trips.
  entry.input_box = {absint::Interval(5e-324, 1.0 / 3.0), absint::Interval(-0.0, 1e308)};
  entry.tail_boxes = {{absint::Interval(-1e-200, 0.1)}};
  entry.tail_vars = {{3, 1, 4}};
  milp::cuts::Cut cut;
  cut.row.terms = {{0, 1.0 / 7.0}, {5, -2.2250738585072014e-308}};
  cut.row.sense = lp::RowSense::kGreaterEqual;
  cut.row.rhs = -0.0;
  cut.source = "relu-split";
  entry.root_cuts.push_back(cut);
  cut.source = "gomory-mi";
  cut.row.sense = lp::RowSense::kLessEqual;
  entry.root_cuts.push_back(cut);
  verify::NamedPseudocost prior;
  prior.var = "y a3 n7";  // spaces must survive the token stream
  prior.down.gain_sum = 0.1;
  prior.down.solved = 4;
  prior.up.infeasible = 2;
  entry.pseudocosts.push_back(prior);
  bundle.queries.push_back(entry);

  const std::string path = temp_path("delta_roundtrip");
  verify::save_delta_artifacts(path, bundle);
  verify::DeltaArtifacts loaded;
  ASSERT_TRUE(verify::load_delta_artifacts(path, loaded));
  EXPECT_EQ(loaded.base_fingerprint, bundle.base_fingerprint);
  EXPECT_EQ(loaded.delta_chain, bundle.delta_chain);
  EXPECT_EQ(loaded.attach_layer, 3u);
  ASSERT_EQ(loaded.queries.size(), 1u);
  const verify::QueryArtifacts& e = loaded.queries[0];
  EXPECT_EQ(e.query_key, 42u);
  EXPECT_EQ(e.verdict, verify::Verdict::kUnsafe);
  EXPECT_EQ(e.query_fingerprint, entry.query_fingerprint);
  ASSERT_EQ(e.input_box.size(), 2u);
  EXPECT_TRUE(bits_equal(e.input_box[0].lo, 5e-324));
  EXPECT_TRUE(bits_equal(e.input_box[0].hi, 1.0 / 3.0));
  EXPECT_TRUE(bits_equal(e.input_box[1].lo, -0.0));  // signed zero survives
  ASSERT_EQ(e.tail_boxes.size(), 1u);
  EXPECT_TRUE(bits_equal(e.tail_boxes[0][0].lo, -1e-200));
  EXPECT_EQ(e.tail_vars, entry.tail_vars);
  ASSERT_EQ(e.root_cuts.size(), 2u);
  EXPECT_STREQ(e.root_cuts[0].source, "relu-split");
  EXPECT_STREQ(e.root_cuts[1].source, "gomory-mi");
  EXPECT_EQ(e.root_cuts[0].row.sense, lp::RowSense::kGreaterEqual);
  ASSERT_EQ(e.root_cuts[0].row.terms.size(), 2u);
  EXPECT_EQ(e.root_cuts[0].row.terms[1].var, 5u);
  EXPECT_TRUE(bits_equal(e.root_cuts[0].row.terms[0].coeff, 1.0 / 7.0));
  EXPECT_TRUE(bits_equal(e.root_cuts[0].row.rhs, -0.0));
  ASSERT_EQ(e.pseudocosts.size(), 1u);
  EXPECT_EQ(e.pseudocosts[0].var, "y a3 n7");
  EXPECT_TRUE(bits_equal(e.pseudocosts[0].down.gain_sum, 0.1));
  EXPECT_EQ(e.pseudocosts[0].down.solved, 4u);
  EXPECT_EQ(e.pseudocosts[0].up.infeasible, 2u);

  EXPECT_FALSE(verify::load_delta_artifacts(temp_path("delta_missing"), loaded));
}

// ------------------------------------- reuse class 1: bound trace parity

TEST(DeltaTraceReuse, ExactReuseReproducesEncodingBitIdentically) {
  Rng rng(7);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network charac = make_characterizer(6, rng);
  verify::VerificationQuery q = make_query(net, 6, 0.2);
  q.characterizer = &charac;
  q.characterizer_threshold = 0.1;

  const verify::TailEncoding fresh = verify::encode_tail_query(q, {});
  verify::EncodeOptions reuse;
  reuse.tail_bound_trace = &fresh.realized_tail_boxes;
  reuse.tail_bound_trace_key = 99;
  const verify::TailEncoding replay = verify::encode_tail_query(q, reuse);

  ASSERT_EQ(fresh.problem.variable_count(), replay.problem.variable_count());
  EXPECT_EQ(fresh.stats.binaries, replay.stats.binaries);
  EXPECT_EQ(fresh.stats.stable_relus, replay.stats.stable_relus);
  for (std::size_t v = 0; v < fresh.problem.variable_count(); ++v) {
    EXPECT_TRUE(bits_equal(fresh.problem.relaxation().lower_bound(v),
                           replay.problem.relaxation().lower_bound(v)))
        << "var " << v;
    EXPECT_TRUE(bits_equal(fresh.problem.relaxation().upper_bound(v),
                           replay.problem.relaxation().upper_bound(v)))
        << "var " << v;
  }
  const auto& fr = fresh.problem.relaxation().rows();
  const auto& rr = replay.problem.relaxation().rows();
  ASSERT_EQ(fr.size(), rr.size());
  for (std::size_t r = 0; r < fr.size(); ++r) {
    ASSERT_EQ(fr[r].terms.size(), rr[r].terms.size()) << "row " << r;
    EXPECT_TRUE(bits_equal(fr[r].rhs, rr[r].rhs)) << "row " << r;
    for (std::size_t t = 0; t < fr[r].terms.size(); ++t) {
      EXPECT_EQ(fr[r].terms[t].var, rr[r].terms[t].var);
      EXPECT_TRUE(bits_equal(fr[r].terms[t].coeff, rr[r].terms[t].coeff));
    }
  }
}

TEST(DeltaTraceReuse, IdenticalModelPlansExactReuseAndPreservesVerdicts) {
  Rng rng(11);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network same = net.clone();

  for (const double threshold : {-0.5, 0.3, 5.0}) {
    const verify::VerificationQuery q = make_query(net, 6, threshold);
    const HarvestedBase base = certify_base(net, q, {}, 1);
    const verify::QueryArtifacts* entry = base.bundle.find(1);
    ASSERT_NE(entry, nullptr);

    const verify::DeltaPlan plan =
        verify::plan_delta_reuse(base.bundle, *entry, net, same, q, {});
    ASSERT_TRUE(plan.usable);
    EXPECT_TRUE(plan.tail_identical);
    EXPECT_EQ(plan.trace, verify::TraceReuse::kExact);
    EXPECT_EQ(plan.widening, 0.0);
    EXPECT_EQ(plan.trace_key,
              verify::advance_artifacts(base.bundle, same).versioned_key());

    verify::TailVerifierOptions delta_options;
    plan.apply(delta_options);
    verify::VerificationQuery dq = make_query(same, 6, threshold);
    const verify::VerificationResult delta = verify::TailVerifier(delta_options).verify(dq);
    expect_same_verdict(base.result, delta, "exact trace reuse");

    // With the order-biasing priors disabled, an exact-reuse search
    // reproduces the base run's tree node for node — the strongest
    // observable form of "the problem is bit-identical".
    verify::DeltaPlanOptions no_priors;
    no_priors.reuse_pseudocosts = false;
    const verify::DeltaPlan bare =
        verify::plan_delta_reuse(base.bundle, *entry, net, same, q, no_priors);
    ASSERT_EQ(bare.trace, verify::TraceReuse::kExact);
    verify::TailVerifierOptions bare_options;
    bare.apply(bare_options);
    const verify::VerificationResult replay = verify::TailVerifier(bare_options).verify(dq);
    expect_same_verdict(base.result, replay, "exact trace reuse, no priors");
    EXPECT_EQ(base.result.milp_nodes, replay.milp_nodes) << "threshold " << threshold;
  }
}

TEST(DeltaTraceReuse, WidenedBoxesContainFreshBoundsAndPreserveVerdicts) {
  Rng rng(13);
  const nn::Network net = make_relu_tail(6, 2, rng);
  // Retrain touches the LAST layer: the widening radii are zero on the
  // prefix and positive only from the changed layer on.
  const nn::Network updated = perturb_dense(net, net.layer_count() - 1, 5e-3);

  for (const double threshold : {-0.5, 0.3, 5.0}) {
    const verify::VerificationQuery q = make_query(net, 6, threshold);
    const HarvestedBase base = certify_base(net, q, {}, 1);
    const verify::QueryArtifacts* entry = base.bundle.find(1);
    ASSERT_NE(entry, nullptr);

    verify::VerificationQuery uq = make_query(updated, 6, threshold);
    const verify::DeltaPlan plan =
        verify::plan_delta_reuse(base.bundle, *entry, net, updated, uq, {});
    ASSERT_TRUE(plan.usable);
    EXPECT_FALSE(plan.tail_identical);
    ASSERT_EQ(plan.trace, verify::TraceReuse::kWidened) << "threshold " << threshold;
    EXPECT_GT(plan.widening, 0.0);

    // Soundness: the widened trace must contain the updated model's
    // freshly realized boxes neuron for neuron — the encoder intersects
    // its own interval pass with the injected trace, so containment is
    // exactly "the injected bounds never cut off reachable values".
    const verify::TailEncoding fresh = verify::encode_tail_query(uq, {});
    ASSERT_EQ(plan.bound_trace.size(), fresh.realized_tail_boxes.size());
    for (std::size_t k = 0; k < plan.bound_trace.size(); ++k) {
      ASSERT_EQ(plan.bound_trace[k].size(), fresh.realized_tail_boxes[k].size());
      for (std::size_t i = 0; i < plan.bound_trace[k].size(); ++i) {
        EXPECT_LE(plan.bound_trace[k][i].lo, fresh.realized_tail_boxes[k][i].lo)
            << "layer " << k << " neuron " << i;
        EXPECT_GE(plan.bound_trace[k][i].hi, fresh.realized_tail_boxes[k][i].hi)
            << "layer " << k << " neuron " << i;
      }
    }

    // Verdict parity against a cold run of the updated model.
    const verify::VerificationResult cold = verify::TailVerifier(verify::TailVerifierOptions{}).verify(uq);
    verify::TailVerifierOptions delta_options;
    plan.apply(delta_options);
    const verify::VerificationResult delta = verify::TailVerifier(delta_options).verify(uq);
    expect_same_verdict(cold, delta, "widened trace reuse");
  }
}

TEST(DeltaTraceReuse, WideningBudgetDegradesToColdNotUnsound) {
  Rng rng(17);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network updated = perturb_dense(net, 0, 0.5);  // a big retrain

  const verify::VerificationQuery q = make_query(net, 6, 0.3);
  const HarvestedBase base = certify_base(net, q, {}, 1);
  const verify::VerificationQuery uq = make_query(updated, 6, 0.3);
  verify::DeltaPlanOptions tight;
  tight.max_widening = 1e-12;
  const verify::DeltaPlan plan =
      verify::plan_delta_reuse(base.bundle, *base.bundle.find(1), net, updated, uq, tight);
  ASSERT_TRUE(plan.usable);
  EXPECT_EQ(plan.trace, verify::TraceReuse::kNone);  // over budget: run cold
  // With no trace, cut recycling must have been declined too (its
  // soundness argument rests on the trace reproducing the prefix).
  EXPECT_TRUE(plan.cuts.empty());
}

// --------------------------------------- reuse class 2: root-cut pools

verify::TailVerifierOptions cut_options() {
  verify::TailVerifierOptions options;
  options.milp.cuts.root_rounds = 2;
  options.milp.cuts.root_age_limit = 0;  // keep every cut for the harvest
  return options;
}

TEST(DeltaCutRecycling, FullPoolRecyclesOnIdenticalModelAndQuery) {
  Rng rng(19);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network same = net.clone();
  const verify::VerificationQuery q = make_query(net, 6, 0.3);
  const HarvestedBase base = certify_base(net, q, cut_options(), 1);
  const verify::QueryArtifacts* entry = base.bundle.find(1);
  ASSERT_NE(entry, nullptr);

  const verify::DeltaPlan plan =
      verify::plan_delta_reuse(base.bundle, *entry, net, same, q, {});
  ASSERT_TRUE(plan.usable);
  // Identical tail + box + query fingerprint: the whole pool carries
  // over, Gomory cuts included.
  EXPECT_EQ(plan.cuts.size(), entry->root_cuts.size());
  EXPECT_EQ(plan.cuts_dropped, 0u);

  verify::TailVerifierOptions delta_options = cut_options();
  plan.apply(delta_options);
  const verify::VerificationResult delta = verify::TailVerifier(delta_options).verify(q);
  expect_same_verdict(base.result, delta, "full cut recycling");
  EXPECT_EQ(delta.cuts_recycled, plan.cuts.size());
}

TEST(DeltaCutRecycling, QueryChangeDropsGomoryButKeepsReluSplit) {
  Rng rng(23);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network same = net.clone();
  const verify::VerificationQuery q = make_query(net, 6, 0.3);
  const HarvestedBase base = certify_base(net, q, cut_options(), 1);
  const verify::QueryArtifacts* entry = base.bundle.find(1);
  ASSERT_NE(entry, nullptr);

  // Same model, same box, different risk threshold: the query
  // fingerprint gate must refuse the full-identity path. ReLU-split
  // cuts constrain only the big-M blocks (valid for any risk rows);
  // Gomory cuts bake per-query rows into the tableau and must go.
  verify::VerificationQuery other = make_query(same, 6, 0.9);
  const verify::DeltaPlan plan =
      verify::plan_delta_reuse(base.bundle, *entry, net, same, other, {});
  ASSERT_TRUE(plan.usable);
  EXPECT_TRUE(plan.tail_identical);
  EXPECT_EQ(plan.cuts.size() + plan.cuts_dropped, entry->root_cuts.size());
  for (const milp::cuts::Cut& cut : plan.cuts)
    EXPECT_STREQ(cut.source, "relu-split");

  // Soundness: the recycled cuts must not change the other query's
  // verdict relative to its own cold run.
  const verify::VerificationResult cold = verify::TailVerifier(cut_options()).verify(other);
  verify::TailVerifierOptions delta_options = cut_options();
  plan.apply(delta_options);
  const verify::VerificationResult delta = verify::TailVerifier(delta_options).verify(other);
  expect_same_verdict(cold, delta, "cut recycling across query change");
}

TEST(DeltaCutRecycling, WeightChangeKeepsOnlyPrefixLocalReluSplitCuts) {
  Rng rng(29);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network updated = perturb_dense(net, net.layer_count() - 1, 1e-3);
  const verify::VerificationQuery q = make_query(net, 6, 0.3);
  const HarvestedBase base = certify_base(net, q, cut_options(), 1);
  const verify::QueryArtifacts* entry = base.bundle.find(1);
  ASSERT_NE(entry, nullptr);

  verify::VerificationQuery uq = make_query(updated, 6, 0.3);
  const verify::DeltaPlan plan =
      verify::plan_delta_reuse(base.bundle, *entry, net, updated, uq, {});
  ASSERT_TRUE(plan.usable);
  ASSERT_FALSE(plan.tail_identical);
  EXPECT_EQ(plan.cuts.size() + plan.cuts_dropped, entry->root_cuts.size());

  // Every surviving cut is a ReLU-split cut over variables created
  // before the changed layer's first variable.
  const std::size_t changed_index = (net.layer_count() - 1) - q.attach_layer;
  ASSERT_LT(changed_index, entry->tail_vars.size());
  std::size_t var_limit = static_cast<std::size_t>(-1);
  for (const std::size_t var : entry->tail_vars[changed_index])
    var_limit = std::min(var_limit, var);
  for (const milp::cuts::Cut& cut : plan.cuts) {
    EXPECT_STREQ(cut.source, "relu-split");
    for (const lp::LinearTerm& term : cut.row.terms) EXPECT_LT(term.var, var_limit);
  }

  const verify::VerificationResult cold = verify::TailVerifier(cut_options()).verify(uq);
  verify::TailVerifierOptions delta_options = cut_options();
  plan.apply(delta_options);
  const verify::VerificationResult delta = verify::TailVerifier(delta_options).verify(uq);
  expect_same_verdict(cold, delta, "prefix-local cut recycling");
}

TEST(DeltaCutRecycling, RecycledCutsKeepProvenanceAcrossChains) {
  // A cut recycled into a run and harvested again must keep its ORIGINAL
  // generator source — the partial-path filter of the NEXT delta depends
  // on it ("relu-split" stays recyclable, "gomory-mi" stays droppable).
  Rng rng(31);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network same = net.clone();
  const verify::VerificationQuery q = make_query(net, 6, 0.3);
  const HarvestedBase base = certify_base(net, q, cut_options(), 1);
  const verify::QueryArtifacts* entry = base.bundle.find(1);
  ASSERT_NE(entry, nullptr);
  if (entry->root_cuts.empty()) GTEST_SKIP() << "no cuts separated on this instance";

  const verify::DeltaPlan plan =
      verify::plan_delta_reuse(base.bundle, *entry, net, same, q, {});
  verify::TailVerifierOptions delta_options = cut_options();
  delta_options.milp.cuts.root_rounds = 0;  // inject only, no fresh separation
  plan.apply(delta_options);
  verify::DeltaHarvest second;
  delta_options.harvest = &second;
  const verify::VerificationResult rerun = verify::TailVerifier(delta_options).verify(q);
  ASSERT_TRUE(second.captured);
  EXPECT_EQ(rerun.cuts_recycled, plan.cuts.size());
  ASSERT_EQ(second.root_cuts.size(), plan.cuts.size());
  for (std::size_t k = 0; k < second.root_cuts.size(); ++k)
    EXPECT_STREQ(second.root_cuts[k].source, plan.cuts[k].source) << "cut " << k;
}

// ----------------------------------- reuse class 3: pseudocost priors

TEST(DeltaPseudocosts, PriorsBiasOrderNotVerdicts) {
  Rng rng(37);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network updated = perturb_dense(net, net.layer_count() - 1, 1e-3);

  for (const double threshold : {-0.5, 0.3, 5.0}) {
    const verify::VerificationQuery q = make_query(net, 6, threshold);
    const HarvestedBase base = certify_base(net, q, {}, 1);
    const verify::QueryArtifacts* entry = base.bundle.find(1);
    ASSERT_NE(entry, nullptr);

    verify::VerificationQuery uq = make_query(updated, 6, threshold);
    verify::DeltaPlanOptions priors_only;
    priors_only.reuse_bound_trace = false;
    priors_only.recycle_cuts = false;
    const verify::DeltaPlan plan =
        verify::plan_delta_reuse(base.bundle, *entry, net, updated, uq, priors_only);
    ASSERT_TRUE(plan.usable);
    EXPECT_EQ(plan.trace, verify::TraceReuse::kNone);
    EXPECT_TRUE(plan.cuts.empty());

    const verify::VerificationResult cold = verify::TailVerifier(verify::TailVerifierOptions{}).verify(uq);
    verify::TailVerifierOptions delta_options;
    plan.apply(delta_options);
    const verify::VerificationResult delta = verify::TailVerifier(delta_options).verify(uq);
    expect_same_verdict(cold, delta, "pseudocost priors");
  }
}

// ------------------------------------------ per-query bound refresh

TEST(DeltaRefresh, QueryBoundRefreshPreservesVerdicts) {
  Rng rng(41);
  const nn::Network net = make_relu_tail(6, 2, rng);
  const nn::Network charac = make_characterizer(6, rng);

  for (const double threshold : {-0.5, 0.3, 5.0}) {
    verify::VerificationQuery q = make_query(net, 6, threshold);
    q.characterizer = &charac;
    q.characterizer_threshold = 0.1;

    const verify::VerificationResult cold = verify::TailVerifier(verify::TailVerifierOptions{}).verify(q);
    verify::TailVerifierOptions refresh;
    refresh.refresh_query_bounds = true;
    const verify::VerificationResult refreshed = verify::TailVerifier(refresh).verify(q);
    expect_same_verdict(cold, refreshed, "bound refresh");
    EXPECT_LE(refreshed.refreshed_bounds, 6u);
    if (refreshed.encoding.binaries > 0) EXPECT_GE(refreshed.refresh_seconds, 0.0);
  }
}

// ------------------------------------------------- campaign end to end

train::Dataset labelled_cloud(Rng& rng, std::size_t count) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({x0 > 0.0 ? 1.0 : 0.0}));
  }
  return data;
}

nn::Network make_campaign_net(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

TEST(DeltaCampaign, RecertificationMatchesColdRunAndSavesNextBundle) {
  Rng rng(53);
  const nn::Network net = make_campaign_net(rng);
  // Retrain the tail layer only: the prefix (and thus the monitor's
  // layer-l box) is unchanged, so the bound trace reuses widened.
  const nn::Network updated = perturb_dense(net, 2, 1e-3);

  std::vector<core::CampaignEntry> entries;
  verify::RiskSpec far("far-out");
  far.output_at_least(0, 1, 1e6);
  verify::RiskSpec near("reachable");
  near.output_at_most(0, 1, 1e6);
  entries.push_back({"x0-positive", labelled_cloud(rng, 200), labelled_cloud(rng, 100), far});
  entries.push_back({"x0-positive", labelled_cloud(rng, 200), labelled_cloud(rng, 100), near});

  core::WorkflowConfig config;
  config.characterizer.trainer.epochs = 60;
  config.falsify_first = false;  // every usable entry reaches the MILP
  const std::string bundle_v1 = temp_path("delta_campaign_v1");
  const std::string bundle_v2 = temp_path("delta_campaign_v2");

  // v1: cold certification of the base model, harvesting artifacts.
  core::WorkflowConfig v1 = config;
  v1.delta_artifacts_out_path = bundle_v1;
  const core::CampaignReport base_report = core::run_campaign(net, 2, entries, v1);
  ASSERT_TRUE(base_report.delta_artifacts_saved);
  verify::DeltaArtifacts saved;
  ASSERT_TRUE(verify::load_delta_artifacts(bundle_v1, saved));
  EXPECT_TRUE(saved.delta_chain.empty());
  EXPECT_EQ(saved.attach_layer, 2u);
  EXPECT_FALSE(saved.queries.empty());

  // Reference: cold certification of the updated model.
  const core::CampaignReport cold_report = core::run_campaign(updated, 2, entries, config);

  // v2: delta re-certification against the v1 bundle.
  core::WorkflowConfig v2 = config;
  v2.delta_base = &net;
  v2.delta_artifacts_path = bundle_v1;
  v2.delta_artifacts_out_path = bundle_v2;
  const core::CampaignReport delta_report = core::run_campaign(updated, 2, entries, v2);

  // Verdict compatibility: the delta run's table is bit-identical to
  // the cold run's.
  EXPECT_EQ(cold_report.format_table(), delta_report.format_table());
  EXPECT_EQ(delta_report.delta_entries_exact + delta_report.delta_entries_widened +
                delta_report.delta_entries_cold,
            entries.size());
  EXPECT_GT(delta_report.delta_entries_widened, 0u);

  // The next-generation bundle extends the chain by the updated model.
  ASSERT_TRUE(delta_report.delta_artifacts_saved);
  verify::DeltaArtifacts next;
  ASSERT_TRUE(verify::load_delta_artifacts(bundle_v2, next));
  EXPECT_EQ(next.base_fingerprint, saved.base_fingerprint);
  ASSERT_EQ(next.delta_chain.size(), 1u);
  EXPECT_EQ(next.delta_chain[0], verify::tail_fingerprint(updated, 0));
}

}  // namespace
}  // namespace dpv
