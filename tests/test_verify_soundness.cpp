// Property-based soundness tests of the whole verification stack:
// random tails, random boxes, random risk thresholds. Invariants:
//   * SAFE  => dense random sampling inside the abstraction finds no
//     output in the risk region (and no h=1 point in it, when a
//     characterizer is present);
//   * UNSAFE => the returned counterexample re-validates by concrete
//     forward execution and lies inside the abstraction;
//   * verdicts are monotone: shrinking the abstraction never turns SAFE
//     into UNSAFE;
//   * bound method (interval vs LP tightening) and stable-ReLU
//     elimination never change the verdict, only the encoding size.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "verify/verifier.hpp"

namespace dpv::verify {
namespace {

nn::Network make_random_tail(Rng& rng, std::size_t in_n, std::size_t hidden,
                             std::size_t out_n) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, out_n);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

Tensor sample_in_box(const absint::Box& box, Rng& rng) {
  Tensor x(Shape{box.size()});
  for (std::size_t i = 0; i < box.size(); ++i) x[i] = rng.uniform(box[i].lo, box[i].hi);
  return x;
}

class VerifierSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(VerifierSoundnessSweep, VerdictAgreesWithSampling) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 769 + 5);
  const std::size_t in_n = static_cast<std::size_t>(rng.uniform_int(2, 4));
  const std::size_t hidden = static_cast<std::size_t>(rng.uniform_int(3, 6));
  nn::Network net = make_random_tail(rng, in_n, hidden, 1);
  const absint::Box box = absint::uniform_box(in_n, -1.0, 1.0);

  // Pick a threshold near the sampled output range so both verdicts occur
  // across the sweep.
  double max_seen = -1e100;
  for (int i = 0; i < 200; ++i)
    max_seen = std::max(max_seen, net.forward(sample_in_box(box, rng))[0]);
  const double threshold = max_seen + rng.uniform(-0.3, 0.3);

  VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = box;
  q.risk.output_at_least(0, 1, threshold);

  const VerificationResult r = TailVerifier().verify(q);
  ASSERT_NE(r.verdict, Verdict::kUnknown) << "seed " << GetParam();

  if (r.verdict == Verdict::kSafe) {
    for (int i = 0; i < 2000; ++i) {
      const Tensor out = net.forward(sample_in_box(box, rng));
      ASSERT_LT(out[0], threshold + 1e-7)
          << "SAFE verdict contradicted by sampling, seed " << GetParam();
    }
  } else {
    EXPECT_TRUE(r.counterexample_validated) << "seed " << GetParam();
    for (std::size_t i = 0; i < in_n; ++i) {
      EXPECT_GE(r.counterexample_activation[i], box[i].lo - 1e-7);
      EXPECT_LE(r.counterexample_activation[i], box[i].hi + 1e-7);
    }
    EXPECT_GE(r.counterexample_output[0], threshold - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTails, VerifierSoundnessSweep, ::testing::Range(0, 20));

class VerifierMonotonicitySweep : public ::testing::TestWithParam<int> {};

TEST_P(VerifierMonotonicitySweep, ShrinkingAbstractionPreservesSafety) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 7);
  nn::Network net = make_random_tail(rng, 3, 5, 1);

  VerificationQuery wide;
  wide.network = &net;
  wide.attach_layer = 0;
  wide.input_box = absint::uniform_box(3, -1.0, 1.0);
  wide.risk.output_at_least(0, 1, rng.uniform(-1.0, 3.0));

  VerificationQuery narrow = wide;
  narrow.input_box = absint::uniform_box(3, -0.3, 0.3);

  const Verdict vw = TailVerifier().verify(wide).verdict;
  const Verdict vn = TailVerifier().verify(narrow).verdict;
  if (vw == Verdict::kSafe) EXPECT_EQ(vn, Verdict::kSafe) << "seed " << GetParam();
  // And diff constraints can only help:
  VerificationQuery with_diff = wide;
  with_diff.diff_bounds.assign(2, absint::Interval(-0.5, 0.5));
  const Verdict vd = TailVerifier().verify(with_diff).verdict;
  if (vw == Verdict::kSafe) EXPECT_EQ(vd, Verdict::kSafe) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomTails, VerifierMonotonicitySweep, ::testing::Range(0, 12));

class VerifierEncodingEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(VerifierEncodingEquivalenceSweep, OptionsChangeCostNotVerdict) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 11);
  nn::Network net = make_random_tail(rng, 3, 4, 1);
  VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(3, -0.8, 0.8);
  q.risk.output_at_least(0, 1, rng.uniform(-0.5, 1.5));

  TailVerifierOptions base;
  TailVerifierOptions no_elim;
  no_elim.encode.eliminate_stable_relus = false;
  TailVerifierOptions lp_bounds;
  lp_bounds.encode.bounds = BoundMethod::kLpTightening;

  const Verdict v1 = TailVerifier(base).verify(q).verdict;
  const Verdict v2 = TailVerifier(no_elim).verify(q).verdict;
  const Verdict v3 = TailVerifier(lp_bounds).verify(q).verdict;
  EXPECT_EQ(v1, v2) << "seed " << GetParam();
  EXPECT_EQ(v1, v3) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomTails, VerifierEncodingEquivalenceSweep,
                         ::testing::Range(0, 12));

class VerifierCharacterizerSweep : public ::testing::TestWithParam<int> {};

TEST_P(VerifierCharacterizerSweep, CharacterizerOnlyRestricts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 3);
  nn::Network net = make_random_tail(rng, 3, 4, 1);
  nn::Network charac = make_random_tail(rng, 3, 3, 1);

  VerificationQuery free_q;
  free_q.network = &net;
  free_q.attach_layer = 0;
  free_q.input_box = absint::uniform_box(3, -1.0, 1.0);
  free_q.risk.output_at_least(0, 1, rng.uniform(-0.5, 1.0));

  VerificationQuery restricted = free_q;
  restricted.characterizer = &charac;

  const Verdict vf = TailVerifier().verify(free_q).verdict;
  const VerificationResult rr = TailVerifier().verify(restricted);
  // Adding a constraint can only move UNSAFE -> SAFE, never the reverse.
  if (vf == Verdict::kSafe) EXPECT_EQ(rr.verdict, Verdict::kSafe) << "seed " << GetParam();
  if (rr.verdict == Verdict::kUnsafe) {
    EXPECT_TRUE(rr.counterexample_validated);
    EXPECT_GE(rr.characterizer_logit, -1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTails, VerifierCharacterizerSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace dpv::verify
