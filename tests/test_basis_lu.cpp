// Sparse LU factorization engine tests: factor/solve identity against a
// dense reference on randomized sparse bases, product-form eta update
// equivalence to refactorization across pivot chains, tableau parity
// between the dense-inverse and sparse-LU revised simplex, verdict
// parity across factorization x backend x threads x cuts, and the
// singular-basis crash recovery path.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "lp/basis_lu.hpp"
#include "lp/revised_simplex.hpp"
#include "milp/cuts/cut_engine.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "solver/lp_backend.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

constexpr double kTol = 1e-6;

using lp::BasisLu;
using lp::BasisUpdateKind;
using lp::CscMatrix;
using lp::FactorizationKind;
using lp::LinearTerm;
using lp::LpProblem;
using lp::LpSolution;
using lp::Objective;
using lp::PricingRule;
using lp::RevisedSimplex;
using lp::RowSense;
using lp::SimplexOptions;
using lp::SolveStatus;
using solver::LpBackendKind;

// ------------------------------------------------------- dense reference

/// Builds the dense basis matrix selected by `basic` (j < n: structural
/// column j of A; j >= n: logical -e_{j-n}).
std::vector<double> dense_basis(const CscMatrix& A, std::size_t n,
                                const std::vector<std::int32_t>& basic) {
  const std::size_t m = basic.size();
  std::vector<double> B(m * m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t j = static_cast<std::size_t>(basic[k]);
    if (j >= n) {
      B[(j - n) * m + k] = -1.0;
    } else {
      for (std::size_t e = A.col_start[j]; e < A.col_start[j + 1]; ++e)
        B[A.row_index[e] * m + k] += A.value[e];
    }
  }
  return B;
}

/// Solves M x = b by Gaussian elimination with partial pivoting.
/// Returns false when M is (near) singular.
bool dense_solve(std::vector<double> M, std::size_t m, std::vector<double>& b) {
  std::vector<std::size_t> perm(m);
  for (std::size_t i = 0; i < m; ++i) perm[i] = i;
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    double best = std::abs(M[perm[col] * m + col]);
    for (std::size_t r = col + 1; r < m; ++r) {
      const double a = std::abs(M[perm[r] * m + col]);
      if (a > best) {
        best = a;
        pivot = r;
      }
    }
    if (best < 1e-10) return false;
    std::swap(perm[col], perm[pivot]);
    const double inv = 1.0 / M[perm[col] * m + col];
    for (std::size_t r = col + 1; r < m; ++r) {
      const double f = M[perm[r] * m + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < m; ++c) M[perm[r] * m + c] -= f * M[perm[col] * m + c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  std::vector<double> x(m, 0.0);
  for (std::size_t col = m; col-- > 0;) {
    double v = b[perm[col]];
    for (std::size_t c = col + 1; c < m; ++c) v -= M[perm[col] * m + c] * x[c];
    x[col] = v / M[perm[col] * m + col];
  }
  b = std::move(x);
  return true;
}

std::vector<double> transpose(const std::vector<double>& M, std::size_t m) {
  std::vector<double> T(m * m);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c) T[c * m + r] = M[r * m + c];
  return T;
}

/// Random sparse structural columns: ~3 nonzeros each on distinct rows,
/// entries O(1) and bounded away from zero.
CscMatrix random_csc(Rng& rng, std::size_t m, std::size_t n) {
  CscMatrix A;
  A.rows = m;
  A.cols = n;
  A.col_start.assign(n + 1, 0);
  std::vector<std::size_t> rows(m);
  for (std::size_t i = 0; i < m; ++i) rows[i] = i;
  for (std::size_t j = 0; j < n; ++j) {
    A.col_start[j] = A.row_index.size();
    const std::size_t nnz =
        std::min<std::size_t>(m, static_cast<std::size_t>(rng.uniform_int(1, 4)));
    // Partial Fisher-Yates: the first nnz entries of `rows` become a
    // uniform sample of distinct row indices.
    for (std::size_t k = 0; k < nnz; ++k) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(static_cast<int>(k), static_cast<int>(m) - 1));
      std::swap(rows[k], rows[pick]);
      A.row_index.push_back(rows[k]);
      A.value.push_back(rng.uniform(-3.0, 3.0) + (rng.bernoulli(0.5) ? 1.5 : -1.5));
    }
  }
  A.col_start[n] = A.row_index.size();
  return A;
}

/// A random basis mixing structural and logical columns.
std::vector<std::int32_t> random_basis(Rng& rng, std::size_t m, std::size_t n) {
  std::vector<std::int32_t> basic(m);
  std::vector<std::uint8_t> used(n, 0);
  for (std::size_t k = 0; k < m; ++k) {
    if (rng.bernoulli(0.45)) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
      if (!used[j]) {
        used[j] = 1;
        basic[k] = static_cast<std::int32_t>(j);
        continue;
      }
    }
    basic[k] = static_cast<std::int32_t>(n + k);  // logical of its own row
  }
  return basic;
}

// --------------------------------------------------- factor/solve parity

TEST(BasisLuFactor, FtranAndBtranMatchDenseSolvesOnRandomSparseBases) {
  std::size_t factored = 0;
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 65537 + 3);
    // Random structural/logical bases are frequently singular; redraw
    // until the dense oracle accepts one so every seed tests a solve.
    for (int attempt = 0; attempt < 40; ++attempt) {
      const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 30));
      const std::size_t n = m + static_cast<std::size_t>(rng.uniform_int(1, 20));
      const CscMatrix A = random_csc(rng, m, n);
      const std::vector<std::int32_t> basic = random_basis(rng, m, n);
      const std::vector<double> B = dense_basis(A, n, basic);

      std::vector<double> rhs(m);
      for (std::size_t i = 0; i < m; ++i) rhs[i] = rng.uniform(-2.0, 2.0);

      std::vector<double> dense_x = rhs;
      if (!dense_solve(B, m, dense_x)) continue;  // singular draw: redraw

      BasisLu lu;
      ASSERT_TRUE(lu.factorize(A, n, basic)) << "seed " << seed << " m " << m;
      ++factored;

      std::vector<double> x = rhs;
      lu.ftran(x);
      for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(x[i], dense_x[i], 1e-7) << "ftran seed " << seed << " i " << i;

      std::vector<double> dense_y = rhs;
      ASSERT_TRUE(dense_solve(transpose(B, m), m, dense_y));
      std::vector<double> y = rhs;
      lu.btran(y);
      for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(y[i], dense_y[i], 1e-7) << "btran seed " << seed << " i " << i;
      break;
    }
  }
  EXPECT_GE(factored, 35u);  // the sweep must exercise real factorizations
}

TEST(BasisLuFactor, EtaUpdatesStayEquivalentToRefactorizationAcrossPivotChains) {
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 2417 + 7);
    const std::size_t m = 18;
    const std::size_t n = 40;
    const CscMatrix A = random_csc(rng, m, n);
    std::vector<std::int32_t> basic(m);
    for (std::size_t k = 0; k < m; ++k) basic[k] = static_cast<std::int32_t>(n + k);

    BasisLu lu;
    ASSERT_TRUE(lu.factorize(A, n, basic));

    std::size_t applied = 0;
    for (int pivot = 0; pivot < 50; ++pivot) {
      // Entering column: a random structural column not already basic.
      const std::size_t q =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
      bool in_basis = false;
      for (const std::int32_t b : basic)
        if (static_cast<std::size_t>(b) == q) in_basis = true;
      if (in_basis) continue;
      std::vector<double> w(m, 0.0);
      for (std::size_t e = A.col_start[q]; e < A.col_start[q + 1]; ++e)
        w[A.row_index[e]] = A.value[e];
      lu.ftran(w);
      // Leaving position: largest |w[r]| (a stable replacement exists).
      std::size_t r = m;
      double best = 1e-7;
      for (std::size_t i = 0; i < m; ++i) {
        if (std::abs(w[i]) > best) {
          best = std::abs(w[i]);
          r = i;
        }
      }
      if (r == m) continue;
      ASSERT_TRUE(lu.update(r, w)) << "seed " << seed << " pivot " << pivot;
      basic[r] = static_cast<std::int32_t>(q);
      ++applied;

      // The eta-updated engine must agree with a from-scratch
      // factorization of the *current* basis, in both directions.
      BasisLu fresh;
      ASSERT_TRUE(fresh.factorize(A, n, basic)) << "seed " << seed << " pivot " << pivot;
      std::vector<double> rhs(m);
      for (std::size_t i = 0; i < m; ++i) rhs[i] = rng.uniform(-1.0, 1.0);
      std::vector<double> via_etas = rhs, via_fresh = rhs;
      lu.ftran(via_etas);
      fresh.ftran(via_fresh);
      for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(via_etas[i], via_fresh[i], 1e-6)
            << "ftran seed " << seed << " pivot " << pivot;
      via_etas = rhs;
      via_fresh = rhs;
      lu.btran(via_etas);
      fresh.btran(via_fresh);
      for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(via_etas[i], via_fresh[i], 1e-6)
            << "btran seed " << seed << " pivot " << pivot;
    }
    EXPECT_GT(applied, 10u) << "seed " << seed;
    EXPECT_GT(lu.eta_count(), 0u);
  }
}

TEST(BasisLuFactor, ForrestTomlinAndProductFormAgreeOverHundredPivotChains) {
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 11);
    const std::size_t m = 24;
    const std::size_t n = 60;
    const CscMatrix A = random_csc(rng, m, n);
    std::vector<std::int32_t> basic(m);
    for (std::size_t k = 0; k < m; ++k) basic[k] = static_cast<std::int32_t>(n + k);

    BasisLu ft;
    ft.set_update_kind(BasisUpdateKind::kForrestTomlin);
    BasisLu pfi;
    pfi.set_update_kind(BasisUpdateKind::kProductFormEta);
    ASSERT_TRUE(ft.factorize(A, n, basic));
    ASSERT_TRUE(pfi.factorize(A, n, basic));
    ASSERT_EQ(ft.update_kind(), BasisUpdateKind::kForrestTomlin);
    ASSERT_EQ(pfi.update_kind(), BasisUpdateKind::kProductFormEta);

    std::size_t applied = 0;
    for (int attempt = 0; attempt < 1000 && applied < 100; ++attempt) {
      const std::size_t q =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
      bool in_basis = false;
      for (const std::int32_t b : basic)
        if (static_cast<std::size_t>(b) == q) in_basis = true;
      if (in_basis) continue;
      std::vector<double> column(m, 0.0);
      for (std::size_t e = A.col_start[q]; e < A.col_start[q + 1]; ++e)
        column[A.row_index[e]] = A.value[e];
      std::vector<double> w_ft = column, w_pfi = column;
      ft.ftran(w_ft);
      pfi.ftran(w_pfi);
      for (std::size_t i = 0; i < m; ++i)
        ASSERT_NEAR(w_ft[i], w_pfi[i], 1e-6)
            << "ftran seed " << seed << " pivot " << applied;
      std::size_t r = m;
      double best = 1e-6;
      for (std::size_t i = 0; i < m; ++i) {
        if (std::abs(w_ft[i]) > best) {
          best = std::abs(w_ft[i]);
          r = i;
        }
      }
      if (r == m) continue;
      const bool ok_ft = ft.update(r, w_ft);
      const bool ok_pfi = pfi.update(r, w_pfi);
      basic[r] = static_cast<std::int32_t>(q);
      if (!ok_ft || !ok_pfi) {
        // A scheme declined a marginal pivot: both restart from a fresh
        // factorization of the current basis and the chain continues.
        ASSERT_TRUE(ft.factorize(A, n, basic));
        ASSERT_TRUE(pfi.factorize(A, n, basic));
      }
      ++applied;

      // Both update schemes must agree with each other AND with a
      // from-scratch factorization of the current basis.
      BasisLu fresh;
      ASSERT_TRUE(fresh.factorize(A, n, basic)) << "seed " << seed;
      std::vector<double> rhs(m);
      for (std::size_t i = 0; i < m; ++i) rhs[i] = rng.uniform(-1.0, 1.0);
      std::vector<double> via_ft = rhs, via_pfi = rhs, via_fresh = rhs;
      ft.ftran(via_ft);
      pfi.ftran(via_pfi);
      fresh.ftran(via_fresh);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(via_ft[i], via_fresh[i], 1e-5)
            << "ft-ftran seed " << seed << " pivot " << applied;
        EXPECT_NEAR(via_pfi[i], via_fresh[i], 1e-5)
            << "pfi-ftran seed " << seed << " pivot " << applied;
      }
      via_ft = via_pfi = via_fresh = rhs;
      ft.btran(via_ft);
      pfi.btran(via_pfi);
      fresh.btran(via_fresh);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_NEAR(via_ft[i], via_fresh[i], 1e-5)
            << "ft-btran seed " << seed << " pivot " << applied;
        EXPECT_NEAR(via_pfi[i], via_fresh[i], 1e-5)
            << "pfi-btran seed " << seed << " pivot " << applied;
      }
    }
    ASSERT_GE(applied, 100u) << "seed " << seed;
  }
}

TEST(BasisLuFactor, AdaptiveCadenceScalesWithBasisDimension) {
  Rng rng(91);
  for (const std::size_t m : {std::size_t{8}, std::size_t{200}, std::size_t{900}}) {
    const CscMatrix A = random_csc(rng, m, m + 4);
    std::vector<std::int32_t> basic(m);
    for (std::size_t k = 0; k < m; ++k)
      basic[k] = static_cast<std::int32_t>(m + 4 + k);
    // Forrest–Tomlin keeps U triangular, so it sustains a longer update
    // run than the eta file: cadence clamp(m, 64, 512) vs clamp(m/2, 32,
    // 256).
    BasisLu ft;
    ft.set_update_kind(BasisUpdateKind::kForrestTomlin);
    ASSERT_TRUE(ft.factorize(A, m + 4, basic));
    EXPECT_GE(ft.refactor_cadence(), 64u);
    EXPECT_LE(ft.refactor_cadence(), 512u);
    if (m >= 200) EXPECT_GE(ft.refactor_cadence(), m / 2);

    BasisLu pfi;
    pfi.set_update_kind(BasisUpdateKind::kProductFormEta);
    ASSERT_TRUE(pfi.factorize(A, m + 4, basic));
    EXPECT_GE(pfi.refactor_cadence(), 32u);
    EXPECT_LE(pfi.refactor_cadence(), 256u);
    if (m >= 200) EXPECT_GE(pfi.refactor_cadence(), m / 4);
    EXPECT_LE(pfi.refactor_cadence(), ft.refactor_cadence());
  }
}

// ------------------------------------------- revised simplex parity

SimplexOptions options_for(FactorizationKind kind) {
  SimplexOptions options;
  options.factorization = kind;
  return options;
}

LpProblem random_lp(Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 10));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 14));
  LpProblem p;
  std::vector<double> interior(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = rng.uniform(0.5, 5.0);
    p.add_variable(lo, hi);
    interior[i] = 0.5 * (lo + hi);
  }
  for (std::size_t r = 0; r < m; ++r) {
    double activity = 0.0;
    std::vector<LinearTerm> terms;
    for (std::size_t c = 0; c < n; ++c) {
      if (rng.bernoulli(0.5)) continue;  // sparse rows, like the encoder's
      const double coeff = rng.uniform(-2.0, 2.0);
      terms.push_back({c, coeff});
      activity += coeff * interior[c];
    }
    if (terms.empty()) terms.push_back({0, 1.0}), activity = interior[0];
    const int sense = rng.uniform_int(0, 2);
    if (sense == 0)
      p.add_row(terms, RowSense::kLessEqual, activity + rng.uniform(0.1, 2.0));
    else if (sense == 1)
      p.add_row(terms, RowSense::kGreaterEqual, activity - rng.uniform(0.1, 2.0));
    else
      p.add_row(terms, RowSense::kEqual, activity);
  }
  std::vector<LinearTerm> objective;
  for (std::size_t c = 0; c < n; ++c) objective.push_back({c, rng.uniform(-1.0, 1.0)});
  p.set_objective(objective, rng.bernoulli(0.5) ? Objective::kMinimize
                                                : Objective::kMaximize);
  return p;
}

void expect_feasible(const LpProblem& p, const LpSolution& sol, const char* label) {
  for (std::size_t v = 0; v < p.variable_count(); ++v) {
    EXPECT_GE(sol.values[v], p.lower_bound(v) - kTol) << label;
    EXPECT_LE(sol.values[v], p.upper_bound(v) + kTol) << label;
  }
  for (const auto& row : p.rows()) {
    double activity = 0.0;
    for (const LinearTerm& t : row.terms) activity += t.coeff * sol.values[t.var];
    if (row.sense == RowSense::kLessEqual) {
      EXPECT_LE(activity, row.rhs + kTol) << label;
    } else if (row.sense == RowSense::kGreaterEqual) {
      EXPECT_GE(activity, row.rhs - kTol) << label;
    } else {
      EXPECT_NEAR(activity, row.rhs, kTol) << label;
    }
  }
}

class FactorizationRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(FactorizationRandomLp, SparseLuAgreesWithDenseInverse) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 92821 + 5);
  const LpProblem p = random_lp(rng);
  RevisedSimplex dense(options_for(FactorizationKind::kDenseInverse));
  RevisedSimplex sparse(options_for(FactorizationKind::kSparseLu));
  dense.load(p);
  sparse.load(p);
  const LpSolution a = dense.solve();
  const LpSolution b = sparse.solve();
  ASSERT_EQ(a.status, b.status);
  if (a.status != SolveStatus::kOptimal) return;
  EXPECT_NEAR(a.objective, b.objective, kTol);
  expect_feasible(p, a, "dense-inverse");
  expect_feasible(p, b, "sparse-lu");
  EXPECT_GT(sparse.factor_stats().factorizations, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, FactorizationRandomLp, ::testing::Range(0, 60));

class PricingRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(PricingRandomLp, DevexAndDantzigReachTheSameOptima) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 9);
  const LpProblem p = random_lp(rng);
  for (const FactorizationKind kind :
       {FactorizationKind::kDenseInverse, FactorizationKind::kSparseLu}) {
    SimplexOptions dantzig_options = options_for(kind);
    dantzig_options.pricing = PricingRule::kDantzig;
    SimplexOptions devex_options = options_for(kind);
    devex_options.pricing = PricingRule::kDevex;
    RevisedSimplex dantzig(dantzig_options);
    RevisedSimplex devex(devex_options);
    dantzig.load(p);
    devex.load(p);
    const LpSolution a = dantzig.solve();
    const LpSolution b = devex.solve();
    ASSERT_EQ(a.status, b.status) << "seed " << GetParam();
    EXPECT_EQ(dantzig.pricing_resets(), 0u);  // Dantzig never runs the framework
    if (a.status != SolveStatus::kOptimal) continue;
    EXPECT_NEAR(a.objective, b.objective, kTol) << "seed " << GetParam();
    expect_feasible(p, a, "dantzig");
    expect_feasible(p, b, "devex");
  }
}

// The legacy reduced-cost path (per-iteration duals BTRAN + lazy
// pricing dots, incremental_reduced_costs = false) is kept as the
// bench's pr5-baseline rung; it must stay a faithful differential
// twin of the incremental default.
TEST_P(PricingRandomLp, LegacyReducedCostPathMatchesIncremental) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 76493 + 21);
  const LpProblem p = random_lp(rng);
  for (const PricingRule pricing : {PricingRule::kDantzig, PricingRule::kDevex}) {
    SimplexOptions incr_options = options_for(FactorizationKind::kSparseLu);
    incr_options.pricing = pricing;
    SimplexOptions legacy_options = incr_options;
    legacy_options.incremental_reduced_costs = false;
    RevisedSimplex incr(incr_options);
    RevisedSimplex legacy(legacy_options);
    incr.load(p);
    legacy.load(p);
    const LpSolution a = incr.solve();
    const LpSolution b = legacy.solve();
    ASSERT_EQ(a.status, b.status) << "seed " << GetParam();
    if (a.status != SolveStatus::kOptimal) continue;
    EXPECT_NEAR(a.objective, b.objective, kTol) << "seed " << GetParam();
    expect_feasible(p, b, "legacy-reduced-costs");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, PricingRandomLp, ::testing::Range(0, 60));

TEST(BasisUpdateCounters, FactorStatsAttributeUpdatesToTheActiveScheme) {
  std::size_t exercised = 0;
  for (int seed = 0; seed < 20 && exercised < 5; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 30103 + 17);
    const LpProblem p = random_lp(rng);
    SimplexOptions ft_options = options_for(FactorizationKind::kSparseLu);
    ft_options.basis_update = BasisUpdateKind::kForrestTomlin;
    SimplexOptions pfi_options = options_for(FactorizationKind::kSparseLu);
    pfi_options.basis_update = BasisUpdateKind::kProductFormEta;
    RevisedSimplex ft(ft_options);
    RevisedSimplex pfi(pfi_options);
    ft.load(p);
    pfi.load(p);
    const LpSolution a = ft.solve();
    const LpSolution b = pfi.solve();
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    EXPECT_EQ(ft.factor_stats().eta_updates, 0u) << "seed " << seed;
    EXPECT_EQ(pfi.factor_stats().ft_updates, 0u) << "seed " << seed;
    EXPECT_EQ(ft.factor_stats().ft_updates, ft.factor_stats().updates);
    EXPECT_EQ(pfi.factor_stats().eta_updates, pfi.factor_stats().updates);
    EXPECT_GT(ft.factor_stats().refactor_cadence, 0u);
    if (ft.factor_stats().updates > 0 && pfi.factor_stats().updates > 0) ++exercised;
  }
  EXPECT_GE(exercised, 5u);  // the sweep must hit real update chains
}

TEST(FactorizationParity, TableauRowsMatchOnTextbookLp) {
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  const std::size_t y = p.add_variable(0.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 2.0}}, RowSense::kLessEqual, 14.0);
  p.add_row({{x, 3.0}, {y, -1.0}}, RowSense::kGreaterEqual, 0.0);
  p.add_row({{x, 1.0}, {y, -1.0}}, RowSense::kLessEqual, 2.0);
  p.set_objective({{x, 3.0}, {y, 4.0}}, Objective::kMaximize);

  RevisedSimplex dense(options_for(FactorizationKind::kDenseInverse));
  RevisedSimplex sparse(options_for(FactorizationKind::kSparseLu));
  dense.load(p);
  sparse.load(p);
  ASSERT_EQ(dense.solve().status, SolveStatus::kOptimal);
  ASSERT_EQ(sparse.solve().status, SolveStatus::kOptimal);

  for (std::size_t r = 0; r < p.row_count(); ++r) {
    lp::TableauRow a, b;
    ASSERT_TRUE(dense.tableau_row(r, a)) << "row " << r;
    ASSERT_TRUE(sparse.tableau_row(r, b)) << "row " << r;
    ASSERT_EQ(a.basic_col, b.basic_col) << "row " << r;
    EXPECT_NEAR(a.basic_value, b.basic_value, 1e-8) << "row " << r;
    std::map<std::size_t, double> alphas;
    for (const auto& e : a.entries) alphas[e.col] = e.alpha;
    ASSERT_EQ(a.entries.size(), b.entries.size()) << "row " << r;
    for (const auto& e : b.entries) {
      ASSERT_TRUE(alphas.count(e.col)) << "row " << r << " col " << e.col;
      EXPECT_NEAR(alphas[e.col], e.alpha, 1e-8) << "row " << r << " col " << e.col;
    }
  }
}

TEST(FactorizationParity, WarmResolveWorksOnBothEngines) {
  // The branch & bound move: solve, tighten one box, resolve warm.
  for (const FactorizationKind kind :
       {FactorizationKind::kDenseInverse, FactorizationKind::kSparseLu}) {
    Rng rng(99);
    const LpProblem p = random_lp(rng);
    RevisedSimplex simplex(options_for(kind));
    simplex.load(p);
    const LpSolution cold = simplex.solve();
    ASSERT_EQ(cold.status, SolveStatus::kOptimal);
    const lp::SimplexBasis basis = simplex.capture_basis();
    simplex.set_bounds(0, p.lower_bound(0), 0.5 * (p.lower_bound(0) + p.upper_bound(0)));
    const LpSolution warm = simplex.resolve(basis);
    EXPECT_TRUE(simplex.last_resolve_was_warm()) << lp::factorization_kind_name(kind);
    // Reference: a cold solve of the tightened problem.
    LpProblem tightened = p;
    tightened.set_bounds(0, p.lower_bound(0),
                         0.5 * (p.lower_bound(0) + p.upper_bound(0)));
    RevisedSimplex reference(options_for(kind));
    reference.load(tightened);
    const LpSolution expect = reference.solve();
    ASSERT_EQ(warm.status, expect.status) << lp::factorization_kind_name(kind);
    if (warm.status == SolveStatus::kOptimal)
      EXPECT_NEAR(warm.objective, expect.objective, kTol);
  }
}

// ----------------------------------------------- singular-basis recovery

TEST(SingularBasisRecovery, SingularWarmBasisFallsBackAndIsReported) {
  // Columns of x and y are linearly dependent across the two rows, so a
  // basis of {x, y} is singular by construction.
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  const std::size_t y = p.add_variable(0.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 2.0}}, RowSense::kLessEqual, 4.0);
  p.add_row({{x, 2.0}, {y, 4.0}}, RowSense::kLessEqual, 8.0);
  p.set_objective({{x, 1.0}, {y, 1.0}}, Objective::kMaximize);

  for (const FactorizationKind kind :
       {FactorizationKind::kDenseInverse, FactorizationKind::kSparseLu}) {
    RevisedSimplex simplex(options_for(kind));
    simplex.load(p);
    lp::SimplexBasis degenerate;
    degenerate.basic = {static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)};
    // Logicals of <= rows must rest at their (finite) upper bound.
    degenerate.at_upper = {0, 0, 1, 1};
    const LpSolution sol = simplex.resolve(degenerate);
    EXPECT_FALSE(simplex.last_resolve_was_warm()) << lp::factorization_kind_name(kind);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal) << lp::factorization_kind_name(kind);
    EXPECT_NEAR(sol.objective, 4.0, kTol) << lp::factorization_kind_name(kind);
    EXPECT_GE(simplex.factor_stats().singular_recoveries, 1u)
        << lp::factorization_kind_name(kind);
  }
}

TEST(SingularBasisRecovery, BackendSurfacesRecoveriesInSolverStats) {
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  const std::size_t y = p.add_variable(0.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 2.0}}, RowSense::kLessEqual, 4.0);
  p.add_row({{x, 2.0}, {y, 4.0}}, RowSense::kLessEqual, 8.0);
  p.set_objective({{x, 1.0}, {y, 1.0}}, Objective::kMaximize);

  auto backend = solver::make_lp_backend(LpBackendKind::kRevisedBounded, {});
  backend->load(p);
  solver::WarmBasis degenerate;
  degenerate.basic = {static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)};
  degenerate.at_upper = {0, 0, 1, 1};
  const LpSolution sol = backend->resolve(degenerate);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_EQ(backend->stats().warm_hits, 0u);  // the degenerate basis missed
  EXPECT_GE(backend->stats().singular_recoveries, 1u);
  EXPECT_GT(backend->stats().basis_factorizations, 0u);
}

// ------------------------------------------------------- verdict parity

nn::Network make_tail_net(Rng& rng, std::size_t in_n, std::size_t hidden) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

verify::VerificationQuery tail_query(const nn::Network& net, std::size_t in_n,
                                     double threshold) {
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(in_n, -1.0, 1.0);
  q.risk.output_at_least(0, 1, threshold);
  return q;
}

double forcing_threshold(const nn::Network& net, std::size_t in_n, Rng& rng) {
  double sampled_max = -1e100;
  for (int i = 0; i < 1500; ++i) {
    Tensor x(Shape{in_n});
    for (std::size_t j = 0; j < in_n; ++j) x[j] = rng.uniform(-1.0, 1.0);
    sampled_max = std::max(sampled_max, net.forward(x)[0]);
  }
  verify::VerificationQuery probe = tail_query(net, in_n, -1e9);
  verify::TailEncoding enc = verify::encode_tail_query(probe, {});
  enc.problem.relaxation().set_objective({{enc.output_vars[0], 1.0}}, Objective::kMaximize);
  const LpSolution root = lp::SimplexSolver().solve(enc.problem.relaxation());
  const double relax_max =
      root.status == SolveStatus::kOptimal ? root.objective : sampled_max + 1.0;
  return sampled_max + 0.75 * std::max(relax_max - sampled_max, 0.1);
}

TEST(FactorizationVerdictParity, FullBatteryAcrossBackendsThreadsAndCuts) {
  for (const std::uint64_t seed : {31u, 32u}) {
    Rng rng(seed);
    const std::size_t in_n = 3, hidden = 6;
    const nn::Network net = make_tail_net(rng, in_n, hidden);
    // One SAFE proof that must branch, one easy UNSAFE query.
    const double threshold = seed % 2 == 0 ? -5.0 : forcing_threshold(net, in_n, rng);
    const verify::VerificationQuery q = tail_query(net, in_n, threshold);

    verify::TailVerifierOptions base;
    base.milp.max_nodes = 20000;
    const verify::VerificationResult reference = verify::TailVerifier(base).verify(q);
    ASSERT_NE(reference.verdict, verify::Verdict::kUnknown) << "seed " << seed;

    for (const FactorizationKind factorization :
         {FactorizationKind::kDenseInverse, FactorizationKind::kSparseLu}) {
      for (const LpBackendKind backend :
           {LpBackendKind::kRevisedBounded, LpBackendKind::kDenseTableau}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          for (const std::size_t rounds : {std::size_t{0}, std::size_t{4}}) {
            verify::TailVerifierOptions options = base;
            options.milp.lp_options.factorization = factorization;
            options.milp.backend = backend;
            options.milp.threads = threads;
            options.milp.cuts.root_rounds = rounds;
            const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
            EXPECT_EQ(r.verdict, reference.verdict)
                << "seed " << seed << " factorization "
                << lp::factorization_kind_name(factorization) << " backend "
                << solver::lp_backend_kind_name(backend) << " threads " << threads
                << " rounds " << rounds;
            if (r.verdict == verify::Verdict::kUnsafe)
              EXPECT_TRUE(r.counterexample_validated) << "seed " << seed;
            if (backend == LpBackendKind::kRevisedBounded) {
              EXPECT_GT(r.solver_stats.basis_factorizations, 0u) << "seed " << seed;
              if (factorization == FactorizationKind::kSparseLu &&
                  r.solver_stats.basis_updates > 0)
                EXPECT_GT(r.solver_stats.eta_nonzeros, 0u) << "seed " << seed;
            }
          }
        }
      }
    }
  }
}

TEST(PricingVerdictParity, DevexAndSiblingBatchingPreserveVerdictsAcrossGrid) {
  for (const std::uint64_t seed : {41u, 42u}) {
    Rng rng(seed);
    const std::size_t in_n = 3, hidden = 6;
    const nn::Network net = make_tail_net(rng, in_n, hidden);
    const double threshold = seed % 2 == 0 ? -5.0 : forcing_threshold(net, in_n, rng);
    const verify::VerificationQuery q = tail_query(net, in_n, threshold);

    verify::TailVerifierOptions base;
    base.milp.max_nodes = 20000;
    const verify::VerificationResult reference = verify::TailVerifier(base).verify(q);
    ASSERT_NE(reference.verdict, verify::Verdict::kUnknown) << "seed " << seed;

    for (const PricingRule pricing : {PricingRule::kDantzig, PricingRule::kDevex}) {
      for (const bool batch : {false, true}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          for (const std::size_t rounds : {std::size_t{0}, std::size_t{4}}) {
            verify::TailVerifierOptions options = base;
            options.milp.lp_options.pricing = pricing;
            options.milp.batch_sibling_solves = batch;
            options.milp.threads = threads;
            options.milp.cuts.root_rounds = rounds;
            const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
            EXPECT_EQ(r.verdict, reference.verdict)
                << "seed " << seed << " pricing " << lp::pricing_rule_name(pricing)
                << " batch " << batch << " threads " << threads << " rounds "
                << rounds;
            if (r.verdict == verify::Verdict::kUnsafe)
              EXPECT_TRUE(r.counterexample_validated) << "seed " << seed;
            if (pricing == PricingRule::kDantzig)
              EXPECT_EQ(r.solver_stats.pricing_resets, 0u) << "seed " << seed;
            if (!batch)
              EXPECT_EQ(r.solver_stats.sibling_batches, 0u) << "seed " << seed;
            else if (r.milp_nodes > 2 && threads == 1 && rounds == 0)
              // A serial branching search with batching on must have
              // expanded at least one node through solve_children.
              EXPECT_GT(r.solver_stats.sibling_batches, 0u)
                  << "seed " << seed << " nodes " << r.milp_nodes;
          }
        }
      }
    }
  }
}

TEST(FactorizationStats, SummaryNamesBasisWorkAndTimeSplit) {
  Rng rng(123);
  const std::size_t in_n = 3, hidden = 6;
  const nn::Network net = make_tail_net(rng, in_n, hidden);
  const verify::VerificationQuery q =
      tail_query(net, in_n, forcing_threshold(net, in_n, rng));
  verify::TailVerifierOptions options;
  options.milp.max_nodes = 20000;
  const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
  ASSERT_EQ(r.verdict, verify::Verdict::kSafe);
  EXPECT_GT(r.solver_stats.basis_factorizations, 0u);
  EXPECT_GE(r.solver_stats.factor_seconds, 0.0);
  EXPECT_GE(r.solver_stats.pivot_seconds, 0.0);
  EXPECT_GT(r.solver_stats.factor_seconds + r.solver_stats.pivot_seconds, 0.0);
  EXPECT_NE(r.summary().find("basis="), std::string::npos) << r.summary();
}

// --------------------------------------------- root-cut warm start/aging

TEST(RemoveRows, DropsExactlyTheRequestedRows) {
  LpProblem p;
  p.add_variable(0.0, 1.0);
  for (double rhs : {1.0, 2.0, 3.0, 4.0, 5.0})
    p.add_row({{0, 1.0}}, RowSense::kLessEqual, rhs);
  p.remove_rows({1, 3});
  ASSERT_EQ(p.row_count(), 3u);
  EXPECT_EQ(p.rows()[0].rhs, 1.0);
  EXPECT_EQ(p.rows()[1].rhs, 3.0);
  EXPECT_EQ(p.rows()[2].rhs, 5.0);
}

/// Random mixed MILP around an integer-feasible anchor point; Gomory
/// separation sustains several rounds on these, so the warm loop and
/// the aging path both engage (tail encodings tend to go integral after
/// one round and would leave those paths untested).
milp::MilpProblem random_mixed_milp(Rng& rng) {
  milp::MilpProblem p;
  const std::size_t n_bin = static_cast<std::size_t>(rng.uniform_int(4, 8));
  const std::size_t n_cont = static_cast<std::size_t>(rng.uniform_int(1, 3));
  const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(3, 6));
  std::vector<std::size_t> vars;
  std::vector<double> anchor;
  for (std::size_t i = 0; i < n_bin; ++i) {
    vars.push_back(p.add_variable(milp::VarType::kBinary, 0.0, 1.0));
    anchor.push_back(rng.bernoulli(0.5) ? 1.0 : 0.0);
  }
  for (std::size_t i = 0; i < n_cont; ++i) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi = rng.uniform(0.5, 2.0);
    vars.push_back(p.add_variable(milp::VarType::kContinuous, lo, hi));
    anchor.push_back(0.5 * (lo + hi));
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<LinearTerm> terms;
    double at_anchor = 0.0;
    for (std::size_t c = 0; c < vars.size(); ++c) {
      const double coeff = rng.uniform(-3.0, 3.0);
      terms.push_back({vars[c], coeff});
      at_anchor += coeff * anchor[c];
    }
    const int sense = rng.uniform_int(0, 2);
    if (sense == 0)
      p.add_row(terms, RowSense::kLessEqual, at_anchor + rng.uniform(0.1, 2.0));
    else if (sense == 1)
      p.add_row(terms, RowSense::kGreaterEqual, at_anchor - rng.uniform(0.1, 2.0));
    else
      p.add_row(terms, RowSense::kEqual, at_anchor);
  }
  std::vector<LinearTerm> obj;
  for (const std::size_t v : vars) obj.push_back({v, rng.uniform(-2.0, 2.0)});
  p.set_objective(obj, rng.bernoulli(0.5) ? Objective::kMaximize : Objective::kMinimize);
  return p;
}

TEST(RootCutWarmStart, WarmLoopReusesBasesAndAgesOutStaleCuts) {
  std::size_t warm_resolves = 0, aged_out = 0, multi_round_runs = 0;
  for (int seed = 0; seed < 16; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 11);
    const milp::MilpProblem p = random_mixed_milp(rng);
    milp::cuts::CutOptions options;
    options.root_rounds = 10;
    options.warm_root = true;
    options.root_age_limit = 1;  // age out after a single stale round
    milp::MilpProblem copy = p;
    const std::size_t base_rows = p.relaxation().row_count();
    const milp::cuts::RootCutReport report = milp::cuts::run_root_cuts(
        copy, options, LpBackendKind::kRevisedBounded, SimplexOptions{}, 1e-6);

    // Bookkeeping invariants: live + aged == appended, and the problem
    // holds exactly base + live rows.
    EXPECT_EQ(report.cuts_live + report.cuts_aged_out, report.cuts_added)
        << "seed " << seed;
    EXPECT_EQ(copy.relaxation().row_count(), base_rows + report.cuts_live)
        << "seed " << seed;
    warm_resolves += report.warm_rounds;
    aged_out += report.cuts_aged_out;
    if (report.rounds > 1) ++multi_round_runs;
  }
  // The sweep as a whole must exercise the warm path, multi-round
  // separation, and the aging/removal path.
  EXPECT_GT(warm_resolves, 0u);
  EXPECT_GT(multi_round_runs, 0u);
  EXPECT_GT(aged_out, 0u);
}

TEST(RootCutWarmStart, WarmAndAgedSearchStillFindsBruteForceOptima) {
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 3271 + 29);
    const milp::MilpProblem p = random_mixed_milp(rng);

    // Brute force: best objective over feasible binary assignments,
    // completing the continuous part with an LP.
    const std::vector<std::size_t>& bins = p.binary_variables();
    auto lp_backend = solver::make_lp_backend(LpBackendKind::kDenseTableau, {});
    lp_backend->load(p.relaxation());
    const bool maximize = p.relaxation().objective_direction() == Objective::kMaximize;
    bool any = false;
    double best = maximize ? -1e100 : 1e100;
    for (std::size_t mask = 0; mask < (std::size_t{1} << bins.size()); ++mask) {
      for (std::size_t c = 0; c < bins.size(); ++c) {
        const double v = (mask >> c) & 1u ? 1.0 : 0.0;
        lp_backend->set_bounds(bins[c], v, v);
      }
      const LpSolution sol = lp_backend->solve();
      if (sol.status != SolveStatus::kOptimal) continue;
      any = true;
      best = maximize ? std::max(best, sol.objective) : std::min(best, sol.objective);
    }

    milp::BranchAndBoundOptions options;
    options.cuts.root_rounds = 8;
    options.cuts.warm_root = true;
    options.cuts.root_age_limit = 1;
    const milp::MilpResult r = milp::BranchAndBoundSolver(options).solve(p);
    if (!any) {
      EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible) << "seed " << seed;
    } else {
      ASSERT_EQ(r.status, milp::MilpStatus::kOptimal) << "seed " << seed;
      EXPECT_NEAR(r.objective, best, 1e-5) << "seed " << seed;
    }
  }
}

TEST(RootCutWarmStart, TailVerdictsUnchangedByWarmLoopAndAging) {
  for (const std::uint64_t seed : {71u, 72u, 73u}) {
    Rng rng(seed);
    const std::size_t in_n = 3, hidden = 6;
    const nn::Network net = make_tail_net(rng, in_n, hidden);
    const double threshold = seed % 2 == 0 ? -5.0 : forcing_threshold(net, in_n, rng);
    const verify::VerificationQuery q = tail_query(net, in_n, threshold);

    verify::TailVerifierOptions off;
    off.milp.max_nodes = 20000;
    const verify::VerificationResult reference = verify::TailVerifier(off).verify(q);
    ASSERT_NE(reference.verdict, verify::Verdict::kUnknown);

    for (const bool warm : {false, true}) {
      verify::TailVerifierOptions on = off;
      on.milp.cuts.root_rounds = 6;
      on.milp.cuts.warm_root = warm;
      on.milp.cuts.root_age_limit = warm ? 1 : 0;
      const verify::VerificationResult r = verify::TailVerifier(on).verify(q);
      EXPECT_EQ(r.verdict, reference.verdict) << "seed " << seed << " warm " << warm;
    }
  }
}

}  // namespace
}  // namespace dpv
