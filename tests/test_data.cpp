// Road scenario substrate tests: determinism, label geometry, renderer
// behaviour (curvature visibly bends the road, traffic adds pixels,
// brightness scales), property oracles, dataset assembly and the
// perception factory's attachment-point contract.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/dataset_gen.hpp"
#include "data/perception_model.hpp"
#include "data/properties.hpp"
#include "data/renderer.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::data {
namespace {

RoadScenario base_scenario() {
  RoadScenario s;
  s.curvature = 0.0;
  s.lane_offset = 0.0;
  s.brightness = 1.0;
  s.traffic_adjacent = false;
  s.noise_seed = 42;
  return s;
}

TEST(Scenario, SamplingStaysInsideDocumentedRanges) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const RoadScenario s = sample_scenario(rng);
    EXPECT_GE(s.curvature, -1.0);
    EXPECT_LE(s.curvature, 1.0);
    EXPECT_GE(s.lane_offset, -0.3);
    EXPECT_LE(s.lane_offset, 0.3);
    EXPECT_GE(s.brightness, 0.6);
    EXPECT_LE(s.brightness, 1.1);
    EXPECT_GE(s.traffic_distance, 0.3);
    EXPECT_LE(s.traffic_distance, 0.8);
  }
}

TEST(Scenario, AffordancesDependOnlyOnCurvatureAndOffset) {
  RoadScenario a = base_scenario();
  a.curvature = 0.5;
  a.lane_offset = 0.1;
  RoadScenario b = a;
  b.brightness = 0.6;
  b.traffic_adjacent = true;
  b.noise_seed = 7;
  const Affordances fa = ground_truth_affordances(a);
  const Affordances fb = ground_truth_affordances(b);
  EXPECT_DOUBLE_EQ(fa.waypoint_offset, fb.waypoint_offset);
  EXPECT_DOUBLE_EQ(fa.heading, fb.heading);
  // Heading tracks curvature sign and magnitude.
  EXPECT_GT(fa.heading, 0.0);
  a.curvature = -0.5;
  EXPECT_LT(ground_truth_affordances(a).heading, 0.0);
}

TEST(Renderer, DeterministicPerSeed) {
  const RenderConfig config;
  RoadScenario s = base_scenario();
  const Tensor img1 = render_road_image(s, config);
  const Tensor img2 = render_road_image(s, config);
  EXPECT_EQ(max_abs_diff(img1, img2), 0.0);
  s.noise_seed = 43;
  EXPECT_GT(max_abs_diff(img1, render_road_image(s, config)), 0.0);
}

TEST(Renderer, PixelsInUnitRangeAndShapeCorrect) {
  const RenderConfig config{.width = 24, .height = 12};
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Tensor img = render_road_image(sample_scenario(rng), config);
    EXPECT_EQ(img.shape(), (Shape{1, 12, 24}));
    EXPECT_GE(min_value(img), 0.0);
    EXPECT_LE(max_value(img), 1.0);
  }
}

TEST(Renderer, CurvatureBendsCenterline) {
  const RenderConfig config;
  RoadScenario right = base_scenario();
  right.curvature = 0.8;
  RoadScenario left = base_scenario();
  left.curvature = -0.8;
  // At the horizon the centerline moves in the curvature direction.
  EXPECT_GT(road_center_column(right, config, 1.0),
            road_center_column(base_scenario(), config, 1.0));
  EXPECT_LT(road_center_column(left, config, 1.0),
            road_center_column(base_scenario(), config, 1.0));
  // Near the vehicle the curvature has no effect yet.
  EXPECT_NEAR(road_center_column(right, config, 0.0),
              road_center_column(base_scenario(), config, 0.0), 1e-9);
}

TEST(Renderer, CurvatureChangesImagePixels) {
  const RenderConfig config;
  RoadScenario s = base_scenario();
  const Tensor straight = render_road_image(s, config);
  s.curvature = 0.9;
  const Tensor bent = render_road_image(s, config);
  EXPECT_GT(max_abs_diff(straight, bent), 0.2);
}

TEST(Renderer, PerspectiveNarrowsRoad) {
  const RenderConfig config;
  EXPECT_GT(road_half_width(config, 0.0), road_half_width(config, 1.0));
}

TEST(Renderer, TrafficParticipantAddsBrightBlob) {
  const RenderConfig config;
  RoadScenario s = base_scenario();
  const Tensor without = render_road_image(s, config);
  s.traffic_adjacent = true;
  s.traffic_distance = 0.5;
  const Tensor with = render_road_image(s, config);
  EXPECT_GT(max_abs_diff(without, with), 0.1);
}

TEST(Renderer, BrightnessScalesIntensity) {
  RoadScenario s = base_scenario();
  const RenderConfig config{.width = 32, .height = 16, .noise_stddev = 0.0};
  const double bright = mean_value(render_road_image(s, config));
  s.brightness = 0.6;
  const double dark = mean_value(render_road_image(s, config));
  EXPECT_GT(bright, dark + 0.05);
}

TEST(Renderer, RejectsTinyImages) {
  const RenderConfig config{.width = 4, .height = 2};
  EXPECT_THROW(render_road_image(base_scenario(), config), ContractViolation);
}

TEST(Properties, OraclesMatchScenarioParameters) {
  RoadScenario s = base_scenario();
  s.curvature = 0.5;
  EXPECT_TRUE(property_holds(s, InputProperty::kBendRightStrong));
  EXPECT_FALSE(property_holds(s, InputProperty::kBendLeftStrong));
  s.curvature = -0.5;
  EXPECT_TRUE(property_holds(s, InputProperty::kBendLeftStrong));
  s.traffic_adjacent = true;
  EXPECT_TRUE(property_holds(s, InputProperty::kTrafficAdjacent));
  s.brightness = 0.7;
  EXPECT_TRUE(property_holds(s, InputProperty::kLowLight));
  s.brightness = 1.0;
  EXPECT_FALSE(property_holds(s, InputProperty::kLowLight));
}

TEST(Properties, OutputRelevanceTags) {
  EXPECT_TRUE(property_output_relevant(InputProperty::kBendRightStrong));
  EXPECT_TRUE(property_output_relevant(InputProperty::kBendLeftStrong));
  EXPECT_FALSE(property_output_relevant(InputProperty::kTrafficAdjacent));
  EXPECT_FALSE(property_output_relevant(InputProperty::kLowLight));
}

TEST(DatasetGen, RegressionAndPropertyDatasetsAlign) {
  RoadDatasetConfig config;
  config.count = 50;
  config.seed = 9;
  const std::vector<RoadSample> samples = generate_road_samples(config);
  ASSERT_EQ(samples.size(), 50u);
  const train::Dataset reg = to_regression_dataset(samples);
  const train::Dataset prop = to_property_dataset(samples, InputProperty::kBendRightStrong);
  ASSERT_EQ(reg.size(), 50u);
  ASSERT_EQ(prop.size(), 50u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(reg[i].target[1], samples[i].affordances.heading);
    EXPECT_DOUBLE_EQ(prop[i].target[0],
                     samples[i].scenario.curvature >= 0.4 ? 1.0 : 0.0);
    EXPECT_EQ(max_abs_diff(reg[i].input, prop[i].input), 0.0);
  }
}

TEST(DatasetGen, DeterministicPerSeed) {
  RoadDatasetConfig config;
  config.count = 10;
  config.seed = 21;
  const auto a = generate_road_samples(config);
  const auto b = generate_road_samples(config);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(max_abs_diff(a[i].image, b[i].image), 0.0);
}

TEST(PerceptionFactory, AttachmentLayerYieldsRankOneFeatures) {
  Rng rng(2);
  PerceptionConfig config;
  config.render.width = 16;
  config.render.height = 8;
  config.embedding = 12;
  config.features = 8;
  config.tail_hidden = 8;
  const PerceptionModel model = make_perception_network(config, rng);
  const Tensor x = Tensor::randn(Shape{1, 8, 16}, rng, 0.3);
  const Tensor features = model.network.forward_prefix(x, model.attach_layer);
  EXPECT_EQ(features.shape(), (Shape{config.features}));
  // The tail reproduces the full forward pass.
  const Tensor full = model.network.forward(x);
  const Tensor via_tail = model.network.forward_suffix(features, model.attach_layer);
  EXPECT_NEAR(max_abs_diff(full, via_tail), 0.0, 1e-12);
  EXPECT_EQ(full.numel(), 2u);
}

TEST(PerceptionFactory, TailContainsOnlyVerifiableKinds) {
  Rng rng(4);
  PerceptionConfig config;
  config.render.width = 16;
  config.render.height = 8;
  for (const bool bn : {false, true}) {
    config.batchnorm_tail = bn;
    const PerceptionModel model = make_perception_network(config, rng);
    for (std::size_t i = model.attach_layer; i < model.network.layer_count(); ++i) {
      const nn::LayerKind kind = model.network.layer(i).kind();
      EXPECT_TRUE(kind == nn::LayerKind::kDense || kind == nn::LayerKind::kReLU ||
                  kind == nn::LayerKind::kBatchNorm)
          << "layer " << i;
    }
  }
}

TEST(PerceptionFactory, CharacterizerShape) {
  Rng rng(6);
  nn::Network h = make_characterizer_network(16, 8, rng);
  EXPECT_EQ(h.input_shape(), (Shape{16}));
  EXPECT_EQ(h.output_shape(), (Shape{1}));
}

TEST(PerceptionFactory, RejectsIndivisibleImages) {
  Rng rng(8);
  PerceptionConfig config;
  config.render.width = 18;
  config.render.height = 9;
  EXPECT_THROW(make_perception_network(config, rng), ContractViolation);
}

}  // namespace
}  // namespace dpv::data
