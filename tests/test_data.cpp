// Road scenario substrate tests: determinism, label geometry, renderer
// behaviour (curvature visibly bends the road, traffic adds pixels,
// brightness scales), property oracles, dataset assembly and the
// perception factory's attachment-point contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "data/dataset_gen.hpp"
#include "data/perception_model.hpp"
#include "data/properties.hpp"
#include "data/renderer.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::data {
namespace {

RoadScenario base_scenario() {
  RoadScenario s;
  s.curvature = 0.0;
  s.lane_offset = 0.0;
  s.brightness = 1.0;
  s.traffic_adjacent = false;
  s.noise_seed = 42;
  return s;
}

TEST(Scenario, SamplingStaysInsideDocumentedRanges) {
  // The ODD box is the single source of truth: sample_scenario must pin
  // to exactly the ranges scenario_domain() declares (which are the
  // documented RoadScenario ranges), and actually span them.
  const ScenarioBox odd = scenario_domain();
  EXPECT_DOUBLE_EQ(odd.curvature.lo, -1.0);
  EXPECT_DOUBLE_EQ(odd.curvature.hi, 1.0);
  EXPECT_DOUBLE_EQ(odd.lane_offset.lo, -0.3);
  EXPECT_DOUBLE_EQ(odd.lane_offset.hi, 0.3);
  EXPECT_DOUBLE_EQ(odd.brightness.lo, 0.6);
  EXPECT_DOUBLE_EQ(odd.brightness.hi, 1.1);
  EXPECT_DOUBLE_EQ(odd.traffic_distance.lo, 0.3);
  EXPECT_DOUBLE_EQ(odd.traffic_distance.hi, 0.8);

  Rng rng(1);
  ScenarioBox seen;
  for (std::size_t d = 0; d < ScenarioBox::kDimensions; ++d)
    seen.dim(d) = absint::Interval(odd.dim(d).midpoint(), odd.dim(d).midpoint());
  bool saw_traffic = false, saw_free = false;
  for (int i = 0; i < 400; ++i) {
    const RoadScenario s = sample_scenario(rng);
    ScenarioBox membership = odd;
    membership.traffic_adjacent = s.traffic_adjacent;
    EXPECT_TRUE(scenario_in_box(membership, s));
    seen.curvature = seen.curvature.hull(absint::Interval(s.curvature, s.curvature));
    seen.lane_offset = seen.lane_offset.hull(absint::Interval(s.lane_offset, s.lane_offset));
    seen.brightness = seen.brightness.hull(absint::Interval(s.brightness, s.brightness));
    seen.traffic_distance =
        seen.traffic_distance.hull(absint::Interval(s.traffic_distance, s.traffic_distance));
    (s.traffic_adjacent ? saw_traffic : saw_free) = true;
  }
  // 400 uniform draws cover at least 90% of every documented range.
  for (std::size_t d = 0; d < ScenarioBox::kDimensions; ++d)
    EXPECT_GT(seen.dim(d).width(), 0.9 * odd.dim(d).width()) << scenario_dimension_name(d);
  EXPECT_TRUE(saw_traffic);
  EXPECT_TRUE(saw_free);
}

TEST(Scenario, SampleInBoxRespectsBoxAndTrafficFlag) {
  ScenarioBox box = scenario_domain();
  box.curvature = absint::Interval(-0.25, 0.125);
  box.brightness = absint::Interval(0.7, 0.75);
  for (const bool traffic : {false, true}) {
    box.traffic_adjacent = traffic;
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
      const RoadScenario s = sample_scenario_in(box, rng);
      EXPECT_TRUE(scenario_in_box(box, s));
      EXPECT_EQ(s.traffic_adjacent, traffic);
    }
  }
}

TEST(Scenario, BoxVolumeAndSplitAreConsistent) {
  const ScenarioBox odd = scenario_domain();
  const double volume = scenario_box_volume(odd);
  EXPECT_GT(volume, 0.0);
  for (std::size_t d = 0; d < ScenarioBox::kDimensions; ++d) {
    const auto [lower, upper] = split_scenario_box(odd, d);
    // Halves share exactly the splitting face and partition the volume.
    EXPECT_DOUBLE_EQ(lower.dim(d).hi, upper.dim(d).lo);
    EXPECT_DOUBLE_EQ(lower.dim(d).lo, odd.dim(d).lo);
    EXPECT_DOUBLE_EQ(upper.dim(d).hi, odd.dim(d).hi);
    EXPECT_NEAR(scenario_box_volume(lower) + scenario_box_volume(upper), volume, 1e-12);
  }
  EXPECT_THROW(split_scenario_box(odd, ScenarioBox::kDimensions), ContractViolation);
}

TEST(Scenario, AffordancesDependOnlyOnCurvatureAndOffset) {
  RoadScenario a = base_scenario();
  a.curvature = 0.5;
  a.lane_offset = 0.1;
  RoadScenario b = a;
  b.brightness = 0.6;
  b.traffic_adjacent = true;
  b.noise_seed = 7;
  const Affordances fa = ground_truth_affordances(a);
  const Affordances fb = ground_truth_affordances(b);
  EXPECT_DOUBLE_EQ(fa.waypoint_offset, fb.waypoint_offset);
  EXPECT_DOUBLE_EQ(fa.heading, fb.heading);
  // Heading tracks curvature sign and magnitude.
  EXPECT_GT(fa.heading, 0.0);
  a.curvature = -0.5;
  EXPECT_LT(ground_truth_affordances(a).heading, 0.0);
}

TEST(Scenario, AffordanceIndependenceHoldsAcrossRandomizedNuisances) {
  // Property-based version of the information-bottleneck design point:
  // randomize *every* output-irrelevant parameter — including
  // traffic_distance, which a fixed-pair test can silently miss — and
  // the labels must not move at all.
  Rng rng(31);
  const ScenarioBox odd = scenario_domain();
  for (int i = 0; i < 200; ++i) {
    RoadScenario a;
    a.curvature = rng.uniform(odd.curvature.lo, odd.curvature.hi);
    a.lane_offset = rng.uniform(odd.lane_offset.lo, odd.lane_offset.hi);
    a.brightness = rng.uniform(odd.brightness.lo, odd.brightness.hi);
    a.traffic_adjacent = rng.bernoulli(0.5);
    a.traffic_distance = rng.uniform(odd.traffic_distance.lo, odd.traffic_distance.hi);
    a.noise_seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    RoadScenario b = a;
    b.brightness = rng.uniform(odd.brightness.lo, odd.brightness.hi);
    b.traffic_adjacent = !a.traffic_adjacent;
    b.traffic_distance = rng.uniform(odd.traffic_distance.lo, odd.traffic_distance.hi);
    b.noise_seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    const Affordances fa = ground_truth_affordances(a);
    const Affordances fb = ground_truth_affordances(b);
    EXPECT_DOUBLE_EQ(fa.waypoint_offset, fb.waypoint_offset);
    EXPECT_DOUBLE_EQ(fa.heading, fb.heading);
  }
}

TEST(Renderer, DeterministicPerSeed) {
  const RenderConfig config;
  RoadScenario s = base_scenario();
  const Tensor img1 = render_road_image(s, config);
  const Tensor img2 = render_road_image(s, config);
  EXPECT_EQ(max_abs_diff(img1, img2), 0.0);
  s.noise_seed = 43;
  EXPECT_GT(max_abs_diff(img1, render_road_image(s, config)), 0.0);
}

TEST(Renderer, PixelsInUnitRangeAndShapeCorrect) {
  const RenderConfig config{.width = 24, .height = 12};
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Tensor img = render_road_image(sample_scenario(rng), config);
    EXPECT_EQ(img.shape(), (Shape{1, 12, 24}));
    EXPECT_GE(min_value(img), 0.0);
    EXPECT_LE(max_value(img), 1.0);
  }
}

TEST(Renderer, CurvatureBendsCenterline) {
  const RenderConfig config;
  RoadScenario right = base_scenario();
  right.curvature = 0.8;
  RoadScenario left = base_scenario();
  left.curvature = -0.8;
  // At the horizon the centerline moves in the curvature direction.
  EXPECT_GT(road_center_column(right, config, 1.0),
            road_center_column(base_scenario(), config, 1.0));
  EXPECT_LT(road_center_column(left, config, 1.0),
            road_center_column(base_scenario(), config, 1.0));
  // Near the vehicle the curvature has no effect yet.
  EXPECT_NEAR(road_center_column(right, config, 0.0),
              road_center_column(base_scenario(), config, 0.0), 1e-9);
}

TEST(Renderer, CurvatureChangesImagePixels) {
  const RenderConfig config;
  RoadScenario s = base_scenario();
  const Tensor straight = render_road_image(s, config);
  s.curvature = 0.9;
  const Tensor bent = render_road_image(s, config);
  EXPECT_GT(max_abs_diff(straight, bent), 0.2);
}

TEST(Renderer, PerspectiveNarrowsRoad) {
  const RenderConfig config;
  EXPECT_GT(road_half_width(config, 0.0), road_half_width(config, 1.0));
}

TEST(Renderer, TrafficParticipantAddsBrightBlob) {
  const RenderConfig config;
  RoadScenario s = base_scenario();
  const Tensor without = render_road_image(s, config);
  s.traffic_adjacent = true;
  s.traffic_distance = 0.5;
  const Tensor with = render_road_image(s, config);
  EXPECT_GT(max_abs_diff(without, with), 0.1);
}

TEST(Renderer, BrightnessScalesIntensity) {
  RoadScenario s = base_scenario();
  const RenderConfig config{.width = 32, .height = 16, .noise_stddev = 0.0};
  const double bright = mean_value(render_road_image(s, config));
  s.brightness = 0.6;
  const double dark = mean_value(render_road_image(s, config));
  EXPECT_GT(bright, dark + 0.05);
}

TEST(Renderer, RejectsTinyImages) {
  const RenderConfig config{.width = 4, .height = 2};
  EXPECT_THROW(render_road_image(base_scenario(), config), ContractViolation);
}

/// Random sub-box of the ODD along each dimension (possibly the full
/// range), with a random traffic flag.
ScenarioBox random_sub_box(Rng& rng) {
  ScenarioBox box = scenario_domain();
  for (std::size_t d = 0; d < ScenarioBox::kDimensions; ++d) {
    const absint::Interval full = box.dim(d);
    const double a = rng.uniform(full.lo, full.hi);
    const double b = rng.uniform(full.lo, full.hi);
    box.dim(d) = absint::Interval(std::min(a, b), std::max(a, b));
  }
  box.traffic_adjacent = rng.bernoulli(0.5);
  return box;
}

TEST(Renderer, IntervalBoundsContainConcreteRenders) {
  // Soundness of the coverage engine's input hull: every render of every
  // scenario inside a box lies pixel-wise within the box's bounds.
  // Deterministic (fixed seeds); the Gaussian noise stays inside the
  // default 5-sigma budgets for these draws.
  const RenderConfig config{.width = 24, .height = 12};
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const ScenarioBox box = random_sub_box(rng);
    const ImageBounds bounds = render_road_image_bounds(box, config);
    ASSERT_EQ(bounds.lo.shape(), (Shape{1, 12, 24}));
    ASSERT_EQ(bounds.hi.shape(), (Shape{1, 12, 24}));
    for (std::size_t i = 0; i < bounds.lo.numel(); ++i)
      ASSERT_LE(bounds.lo[i], bounds.hi[i]);
    for (int s = 0; s < 20; ++s) {
      const RoadScenario scenario = sample_scenario_in(box, rng);
      const Tensor image = render_road_image(scenario, config);
      for (std::size_t i = 0; i < image.numel(); ++i) {
        ASSERT_GE(image[i], bounds.lo[i] - 1e-12)
            << "trial " << trial << " sample " << s << " pixel " << i;
        ASSERT_LE(image[i], bounds.hi[i] + 1e-12)
            << "trial " << trial << " sample " << s << " pixel " << i;
      }
    }
  }
}

TEST(Renderer, BoundsOfPointBoxAreTightAroundNoiseBudgets) {
  // A degenerate (point) box must reproduce the concrete render within
  // bounds, and those bounds must be tight: outside the few pixels where
  // the branch hull spans two surface categories (road vs centerline,
  // road vs marking), the interval width is just the noise budgets.
  const RenderConfig noiseless{.width = 32, .height = 16, .noise_stddev = 0.0};
  RoadScenario s = base_scenario();
  s.curvature = 0.4;
  s.lane_offset = -0.1;
  ScenarioBox point = scenario_domain();
  point.curvature = absint::Interval(s.curvature, s.curvature);
  point.lane_offset = absint::Interval(s.lane_offset, s.lane_offset);
  point.brightness = absint::Interval(s.brightness, s.brightness);
  point.traffic_adjacent = false;
  const RenderBoundsOptions budgets;
  const ImageBounds bounds = render_road_image_bounds(point, noiseless, budgets);
  const Tensor image = render_road_image(s, noiseless);
  const double tight_width = 2.0 * budgets.texture_noise_bound * s.brightness +
                             2.0 * budgets.sensor_noise_bound;
  std::size_t loose_pixels = 0;
  for (std::size_t i = 0; i < image.numel(); ++i) {
    ASSERT_GE(image[i], bounds.lo[i] - 1e-12) << "pixel " << i;
    ASSERT_LE(image[i], bounds.hi[i] + 1e-12) << "pixel " << i;
    if (bounds.hi[i] - bounds.lo[i] > tight_width + 1e-12) ++loose_pixels;
  }
  EXPECT_LE(loose_pixels, image.numel() / 5);
}

TEST(Properties, OraclesMatchScenarioParameters) {
  RoadScenario s = base_scenario();
  s.curvature = 0.5;
  EXPECT_TRUE(property_holds(s, InputProperty::kBendRightStrong));
  EXPECT_FALSE(property_holds(s, InputProperty::kBendLeftStrong));
  s.curvature = -0.5;
  EXPECT_TRUE(property_holds(s, InputProperty::kBendLeftStrong));
  s.traffic_adjacent = true;
  EXPECT_TRUE(property_holds(s, InputProperty::kTrafficAdjacent));
  s.brightness = 0.7;
  EXPECT_TRUE(property_holds(s, InputProperty::kLowLight));
  s.brightness = 1.0;
  EXPECT_FALSE(property_holds(s, InputProperty::kLowLight));
}

TEST(Properties, OutputRelevanceTags) {
  EXPECT_TRUE(property_output_relevant(InputProperty::kBendRightStrong));
  EXPECT_TRUE(property_output_relevant(InputProperty::kBendLeftStrong));
  EXPECT_FALSE(property_output_relevant(InputProperty::kTrafficAdjacent));
  EXPECT_FALSE(property_output_relevant(InputProperty::kLowLight));
}

TEST(DatasetGen, RegressionAndPropertyDatasetsAlign) {
  RoadDatasetConfig config;
  config.count = 50;
  config.seed = 9;
  const std::vector<RoadSample> samples = generate_road_samples(config);
  ASSERT_EQ(samples.size(), 50u);
  const train::Dataset reg = to_regression_dataset(samples);
  const train::Dataset prop = to_property_dataset(samples, InputProperty::kBendRightStrong);
  ASSERT_EQ(reg.size(), 50u);
  ASSERT_EQ(prop.size(), 50u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(reg[i].target[1], samples[i].affordances.heading);
    EXPECT_DOUBLE_EQ(prop[i].target[0],
                     samples[i].scenario.curvature >= 0.4 ? 1.0 : 0.0);
    EXPECT_EQ(max_abs_diff(reg[i].input, prop[i].input), 0.0);
  }
}

TEST(DatasetGen, DeterministicPerSeed) {
  RoadDatasetConfig config;
  config.count = 10;
  config.seed = 21;
  const auto a = generate_road_samples(config);
  const auto b = generate_road_samples(config);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(max_abs_diff(a[i].image, b[i].image), 0.0);
}

TEST(PerceptionFactory, AttachmentLayerYieldsRankOneFeatures) {
  Rng rng(2);
  PerceptionConfig config;
  config.render.width = 16;
  config.render.height = 8;
  config.embedding = 12;
  config.features = 8;
  config.tail_hidden = 8;
  const PerceptionModel model = make_perception_network(config, rng);
  const Tensor x = Tensor::randn(Shape{1, 8, 16}, rng, 0.3);
  const Tensor features = model.network.forward_prefix(x, model.attach_layer);
  EXPECT_EQ(features.shape(), (Shape{config.features}));
  // The tail reproduces the full forward pass.
  const Tensor full = model.network.forward(x);
  const Tensor via_tail = model.network.forward_suffix(features, model.attach_layer);
  EXPECT_NEAR(max_abs_diff(full, via_tail), 0.0, 1e-12);
  EXPECT_EQ(full.numel(), 2u);
}

TEST(PerceptionFactory, TailContainsOnlyVerifiableKinds) {
  Rng rng(4);
  PerceptionConfig config;
  config.render.width = 16;
  config.render.height = 8;
  for (const bool bn : {false, true}) {
    config.batchnorm_tail = bn;
    const PerceptionModel model = make_perception_network(config, rng);
    for (std::size_t i = model.attach_layer; i < model.network.layer_count(); ++i) {
      const nn::LayerKind kind = model.network.layer(i).kind();
      EXPECT_TRUE(kind == nn::LayerKind::kDense || kind == nn::LayerKind::kReLU ||
                  kind == nn::LayerKind::kBatchNorm)
          << "layer " << i;
    }
  }
}

TEST(PerceptionFactory, CharacterizerShape) {
  Rng rng(6);
  nn::Network h = make_characterizer_network(16, 8, rng);
  EXPECT_EQ(h.input_shape(), (Shape{16}));
  EXPECT_EQ(h.output_shape(), (Shape{1}));
}

TEST(PerceptionFactory, RejectsIndivisibleImages) {
  Rng rng(8);
  PerceptionConfig config;
  config.render.width = 18;
  config.render.height = 9;
  EXPECT_THROW(make_perception_network(config, rng), ContractViolation);
}

}  // namespace
}  // namespace dpv::data
