// Search-strategy layer tests: node-store ordering and steal semantics,
// work-stealing frontier stress (every node processed exactly once),
// pseudocost bookkeeping against hand-computed degradations, verdict
// parity across (node store x branching rule x backend x threads x
// cuts), and best-bound gap reporting on node-limit stops.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/search/branching_rule.hpp"
#include "milp/search/frontier.hpp"
#include "milp/search/node_store.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/verifier.hpp"

namespace dpv::milp {
namespace {

constexpr double kTol = 1e-5;

search::SearchNode make_node(std::uint64_t id, double bound) {
  search::SearchNode node;
  node.id = id;
  node.bound = bound;
  node.has_bound = true;
  return node;
}

// ------------------------------------------------------------ stores

TEST(NodeStore, LifoPopsNewestFirstAndStealsOldestHalf) {
  const auto store =
      search::make_node_store(search::NodeStoreKind::kDepthFirst, true, {});
  for (std::uint64_t id = 0; id < 5; ++id) store->push(make_node(id, 0.0));

  std::vector<search::SearchNode> loot;
  EXPECT_EQ(store->steal_half(loot), 3u);  // ceil(5/2) oldest entries
  ASSERT_EQ(loot.size(), 3u);
  EXPECT_EQ(loot[0].id, 0u);
  EXPECT_EQ(loot[1].id, 1u);
  EXPECT_EQ(loot[2].id, 2u);

  search::SearchNode node;
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 4u);  // owner keeps the newest (the dive)
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 3u);
  EXPECT_FALSE(store->pop(node));
}

TEST(NodeStore, BestFirstPopsBoundOrderWithStableIdTieBreak) {
  search::SearchOptions options;
  const auto store =
      search::make_node_store(search::NodeStoreKind::kBestFirst, true, options);
  store->push(make_node(3, 5.0));
  store->push(make_node(1, 2.0));
  store->push(make_node(2, 2.0));  // same bound as id 1: id order decides
  store->push(make_node(0, 7.0));

  double bound = 0.0;
  ASSERT_TRUE(store->best_bound(bound));
  EXPECT_NEAR(bound, 2.0, 1e-12);

  search::SearchNode node;
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 1u);  // bound 2, older id first
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 2u);
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 3u);
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 0u);

  // Maximize orientation flips the order.
  const auto max_store =
      search::make_node_store(search::NodeStoreKind::kBestFirst, false, options);
  max_store->push(make_node(0, 1.0));
  max_store->push(make_node(1, 9.0));
  ASSERT_TRUE(max_store->pop(node));
  EXPECT_EQ(node.id, 1u);
}

TEST(NodeStore, BestFirstStealsBestHalf) {
  const auto store =
      search::make_node_store(search::NodeStoreKind::kBestFirst, true, {});
  for (std::uint64_t id = 0; id < 4; ++id)
    store->push(make_node(id, static_cast<double>(id)));
  std::vector<search::SearchNode> loot;
  EXPECT_EQ(store->steal_half(loot), 2u);
  ASSERT_EQ(loot.size(), 2u);
  EXPECT_EQ(loot[0].id, 0u);  // best bounds leave first
  EXPECT_EQ(loot[1].id, 1u);
  EXPECT_EQ(store->size(), 2u);
}

TEST(NodeStore, HybridPlungesThenResumesFromBestBound) {
  search::SearchOptions options;
  options.plunge_limit = 2;
  const auto store =
      search::make_node_store(search::NodeStoreKind::kHybrid, true, options);
  store->push(make_node(0, 10.0));
  store->push(make_node(1, 9.0));
  store->push(make_node(2, 8.0));
  store->push(make_node(3, 1.0));  // newest, but not the best bound

  search::SearchNode node;
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 3u);  // plunge pop 1: LIFO
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 2u);  // plunge pop 2: LIFO
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 1u);  // plunge exhausted: best bound (9 < 10)
  ASSERT_TRUE(store->pop(node));
  EXPECT_EQ(node.id, 0u);
  EXPECT_FALSE(store->pop(node));
}

// ---------------------------------------------------------- frontier

/// Wide synthetic tree driven straight through the frontier: every
/// worker expands nodes into `kFanout` children down to `kDepth`, and
/// each processed id is recorded. The invariant under test is the
/// scheduler's: every pushed node is processed exactly once, across
/// owners and thieves alike.
TEST(WorkStealingFrontier, WideTreeProcessesEveryNodeExactlyOnce) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kFanout = 3;
  constexpr std::size_t kDepth = 7;  // (3^8 - 1) / 2 = 3280 nodes
  std::size_t expected = 0, layer = 1;
  for (std::size_t d = 0; d <= kDepth; ++d, layer *= kFanout) expected += layer;

  for (const search::NodeStoreKind kind :
       {search::NodeStoreKind::kDepthFirst, search::NodeStoreKind::kBestFirst,
        search::NodeStoreKind::kHybrid}) {
    search::ParallelFrontier frontier(kWorkers, kind, true, {});
    std::atomic<std::uint64_t> next_id{1};
    search::SearchNode root;  // id 0, depth encoded in `bound`
    root.bound = 0.0;
    root.has_bound = true;
    frontier.push(0, root);

    std::vector<std::vector<std::uint64_t>> seen(kWorkers);
    const auto work = [&](std::size_t w) {
      search::SearchNode node;
      while (frontier.acquire(w, node) ==
             search::ParallelFrontier::Acquire::kGot) {
        seen[w].push_back(node.id);
        const auto depth = static_cast<std::size_t>(node.bound);
        if (depth < kDepth) {
          for (std::size_t c = 0; c < kFanout; ++c) {
            search::SearchNode child;
            child.id = next_id.fetch_add(1);
            child.bound = static_cast<double>(depth + 1);
            child.has_bound = true;
            frontier.push(w, child);
          }
        }
        frontier.complete();
      }
    };
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWorkers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();

    std::vector<std::uint64_t> all;
    bool others_worked = false;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      all.insert(all.end(), seen[w].begin(), seen[w].end());
      if (w > 0 && !seen[w].empty()) others_worked = true;
    }
    ASSERT_EQ(all.size(), expected) << node_store_kind_name(kind);
    std::sort(all.begin(), all.end());
    for (std::uint64_t id = 0; id < expected; ++id)
      ASSERT_EQ(all[id], id) << "duplicate or lost node, store "
                             << node_store_kind_name(kind);
    // Only worker 0 holds the root: anything processed elsewhere must
    // have been stolen.
    if (others_worked)
      EXPECT_GT(frontier.nodes_stolen(), 0u) << node_store_kind_name(kind);
    EXPECT_EQ(frontier.open_count(), 0u);
    EXPECT_GE(frontier.peak_open(), kFanout);
  }
}

// -------------------------------------------------------- pseudocosts

TEST(PseudocostTable, BookkeepingMatchesHandComputedValues) {
  search::PseudocostTable table(3);
  EXPECT_EQ(table.observations(1, true), 0u);
  EXPECT_DOUBLE_EQ(table.average_gain(1, true), 0.0);
  EXPECT_DOUBLE_EQ(table.global_average_gain(), 0.0);

  table.record(1, true, 2.0);
  table.record(1, true, 4.0);
  table.record_infeasible(1, true);
  table.record(1, false, 1.0);
  table.record_infeasible(2, false);

  EXPECT_EQ(table.observations(1, true), 3u);
  EXPECT_DOUBLE_EQ(table.average_gain(1, true), 3.0);     // (2 + 4) / 2
  EXPECT_DOUBLE_EQ(table.infeasible_rate(1, true), 1.0 / 3.0);
  EXPECT_EQ(table.observations(1, false), 1u);
  EXPECT_DOUBLE_EQ(table.average_gain(1, false), 1.0);
  EXPECT_DOUBLE_EQ(table.infeasible_rate(1, false), 0.0);
  EXPECT_EQ(table.observations(2, false), 1u);
  EXPECT_DOUBLE_EQ(table.infeasible_rate(2, false), 1.0);
  // Global mean over the 3 solved observations: (2 + 4 + 1) / 3.
  EXPECT_DOUBLE_EQ(table.global_average_gain(), 7.0 / 3.0);
}

TEST(PseudocostRule, ReliabilityProbesRecordHandComputedDegradations) {
  // max b0 + b1 s.t. 2 b0 + 2 b1 <= 3: the revised simplex lands on the
  // vertex b0 = 0.5, b1 = 1 (objective 1.5, total fractionality 0.5),
  // so b0 is the only fractional candidate.
  //   fix b0 = 0: LP -> b1 = 1, objective 1.0.
  //     degradation 0.5, fractionality drop 0.5, distance 0.5
  //     => gain (0.5 + 0.5) / 0.5 = 2.
  //   fix b0 = 1: LP -> b1 = 0.5, objective 1.5.
  //     degradation 0, drop 0, distance 0.5 => gain 0.
  MilpProblem p;
  const std::size_t b0 = p.add_variable(VarType::kBinary, 0.0, 1.0, "b0");
  const std::size_t b1 = p.add_variable(VarType::kBinary, 0.0, 1.0, "b1");
  p.add_row({{b0, 2.0}, {b1, 2.0}}, lp::RowSense::kLessEqual, 3.0);
  p.set_objective({{b0, 1.0}, {b1, 1.0}}, lp::Objective::kMaximize);

  const auto backend = solver::make_lp_backend(solver::LpBackendKind::kRevisedBounded);
  backend->load(p.relaxation());
  const lp::LpSolution lp = backend->solve();
  ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
  ASSERT_NEAR(lp.values[b0], 0.5, kTol);
  ASSERT_NEAR(lp.values[b1], 1.0, kTol);

  search::SearchOptions options;
  options.branching = search::BranchingRuleKind::kPseudocost;
  options.pseudocost_reliability = 1;
  options.strong_candidates = 4;
  const auto rule = search::make_branching_rule(options.branching, options);

  search::PseudocostTable table(p.variable_count());
  search::BranchContext ctx;
  ctx.problem = &p;
  ctx.backend = backend.get();
  ctx.lp = &lp;
  ctx.minimize = false;
  ctx.pseudocosts = &table;
  EXPECT_EQ(rule->decide(ctx).var, b0);

  EXPECT_EQ(table.observations(b0, false), 1u);
  EXPECT_EQ(table.observations(b0, true), 1u);
  EXPECT_NEAR(table.average_gain(b0, false), 2.0, kTol);
  EXPECT_NEAR(table.average_gain(b0, true), 0.0, kTol);
  EXPECT_DOUBLE_EQ(table.infeasible_rate(b0, false), 0.0);
  EXPECT_DOUBLE_EQ(table.infeasible_rate(b0, true), 0.0);
  // b1 was integral at the node: never probed.
  EXPECT_EQ(table.observations(b1, false), 0u);
  EXPECT_EQ(table.observations(b1, true), 0u);
}

TEST(PseudocostRule, InfeasibleProbeChildrenAreRecorded) {
  // max b0 s.t. b0 + b1 = 0.5: LP optimum b0 = 0.5, b1 = 0.
  //   fix b0 = 0: LP -> b1 = 0.5, objective 0. degradation 0.5, drop 0,
  //     distance 0.5 => gain 1.
  //   fix b0 = 1: infeasible.
  MilpProblem p;
  const std::size_t b0 = p.add_variable(VarType::kBinary, 0.0, 1.0, "b0");
  const std::size_t b1 = p.add_variable(VarType::kBinary, 0.0, 1.0, "b1");
  p.add_row({{b0, 1.0}, {b1, 1.0}}, lp::RowSense::kEqual, 0.5);
  p.set_objective({{b0, 1.0}}, lp::Objective::kMaximize);

  const auto backend = solver::make_lp_backend(solver::LpBackendKind::kRevisedBounded);
  backend->load(p.relaxation());
  const lp::LpSolution lp = backend->solve();
  ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
  ASSERT_NEAR(lp.values[b0], 0.5, kTol);

  search::SearchOptions options;
  options.branching = search::BranchingRuleKind::kPseudocost;
  const auto rule = search::make_branching_rule(options.branching, options);
  search::PseudocostTable table(p.variable_count());
  search::BranchContext ctx;
  ctx.problem = &p;
  ctx.backend = backend.get();
  ctx.lp = &lp;
  ctx.minimize = false;
  ctx.pseudocosts = &table;
  EXPECT_EQ(rule->decide(ctx).var, b0);

  EXPECT_NEAR(table.average_gain(b0, false), 1.0, kTol);
  EXPECT_DOUBLE_EQ(table.infeasible_rate(b0, true), 1.0);
  EXPECT_EQ(table.observations(b0, true), 1u);
}

TEST(WarmResolveIterationDelta, BackendReportsPerSolveIterations) {
  // The lp/solver layers expose the *last* solve's iteration count so
  // per-call effort (probe cost accounting) needs no diffing of the
  // cumulative stats. A warm resolve after a single bound tightening
  // must report only its own handful of pivots.
  MilpProblem p;
  std::vector<lp::LinearTerm> row, obj;
  for (int i = 0; i < 10; ++i) {
    const std::size_t b = p.add_variable(VarType::kBinary, 0.0, 1.0);
    row.push_back({b, 1.0 + 0.1 * i});
    obj.push_back({b, 2.0 - 0.1 * i});
  }
  p.add_row(row, lp::RowSense::kLessEqual, 5.0);
  p.set_objective(obj, lp::Objective::kMaximize);

  const auto backend = solver::make_lp_backend(solver::LpBackendKind::kRevisedBounded);
  backend->load(p.relaxation());
  const lp::LpSolution cold = backend->solve();
  ASSERT_EQ(cold.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(backend->last_solve_iterations(), cold.iterations);

  const solver::WarmBasis basis = backend->capture_basis();
  backend->set_bounds(0, 0.0, 0.0);
  const lp::LpSolution warm = backend->resolve(basis);
  ASSERT_EQ(warm.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(backend->last_solve_iterations(), warm.iterations);
  // The lp layer is the source of truth the backend mirrors.
  lp::RevisedSimplex simplex;
  simplex.load(p.relaxation());
  const lp::LpSolution direct = simplex.solve();
  ASSERT_EQ(direct.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(simplex.last_solve_iterations(), direct.iterations);
  // The delta is per-call, not cumulative.
  EXPECT_LT(backend->last_solve_iterations(), cold.iterations + warm.iterations);
  // And the cumulative counter still carries the total.
  EXPECT_EQ(backend->stats().lp_iterations, cold.iterations + warm.iterations);
}

// -------------------------------------------------- verdict parity

/// Random small MILP instances cross-checked against brute force over
/// all binary assignments, swept over the full strategy grid.
TEST(StrategyParity, RandomMilpsAgreeWithBruteForceAcrossStrategies) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 11);
    const std::size_t n_bin = static_cast<std::size_t>(rng.uniform_int(3, 6));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(2, 4));

    MilpProblem p;
    std::vector<std::size_t> bins;
    for (std::size_t i = 0; i < n_bin; ++i)
      bins.push_back(p.add_variable(VarType::kBinary, 0.0, 1.0));
    std::vector<std::vector<double>> coeffs(n_rows, std::vector<double>(n_bin));
    std::vector<double> rhs(n_rows);
    for (std::size_t r = 0; r < n_rows; ++r) {
      std::vector<lp::LinearTerm> terms;
      for (std::size_t c = 0; c < n_bin; ++c) {
        coeffs[r][c] = rng.uniform(-3.0, 3.0);
        terms.push_back({bins[c], coeffs[r][c]});
      }
      rhs[r] = rng.uniform(-2.0, 4.0);
      p.add_row(terms, lp::RowSense::kLessEqual, rhs[r]);
    }
    std::vector<double> obj(n_bin);
    std::vector<lp::LinearTerm> obj_terms;
    for (std::size_t c = 0; c < n_bin; ++c) {
      obj[c] = rng.uniform(-2.0, 2.0);
      obj_terms.push_back({bins[c], obj[c]});
    }
    p.set_objective(obj_terms, lp::Objective::kMaximize);

    double best = -1e100;
    bool any = false;
    for (std::size_t mask = 0; mask < (1u << n_bin); ++mask) {
      bool feasible = true;
      for (std::size_t r = 0; r < n_rows && feasible; ++r) {
        double act = 0.0;
        for (std::size_t c = 0; c < n_bin; ++c)
          if (mask & (1u << c)) act += coeffs[r][c];
        feasible = act <= rhs[r] + 1e-9;
      }
      if (!feasible) continue;
      any = true;
      double value = 0.0;
      for (std::size_t c = 0; c < n_bin; ++c)
        if (mask & (1u << c)) value += obj[c];
      best = std::max(best, value);
    }

    for (const search::NodeStoreKind store :
         {search::NodeStoreKind::kDepthFirst, search::NodeStoreKind::kBestFirst,
          search::NodeStoreKind::kHybrid}) {
      for (const search::BranchingRuleKind branching :
           {search::BranchingRuleKind::kMostFractional,
            search::BranchingRuleKind::kPseudocost,
            search::BranchingRuleKind::kStrongBranching}) {
        for (const auto backend : {solver::LpBackendKind::kDenseTableau,
                                   solver::LpBackendKind::kRevisedBounded}) {
          for (const std::size_t threads : {1u, 4u}) {
            for (const std::size_t cut_rounds : {0u, 2u}) {
              BranchAndBoundOptions options;
              options.search.node_store = store;
              options.search.branching = branching;
              options.backend = backend;
              options.threads = threads;
              options.cuts.root_rounds = cut_rounds;
              const MilpResult r = BranchAndBoundSolver(options).solve(p);
              const std::string label =
                  std::string(search::node_store_kind_name(store)) + "/" +
                  search::branching_rule_kind_name(branching) + "/" +
                  solver::lp_backend_kind_name(backend) + "/t" +
                  std::to_string(threads) + "/cuts" + std::to_string(cut_rounds) +
                  " seed " + std::to_string(seed);
              if (!any) {
                EXPECT_EQ(r.status, MilpStatus::kInfeasible) << label;
              } else {
                ASSERT_EQ(r.status, MilpStatus::kOptimal) << label;
                EXPECT_NEAR(r.objective, best, 1e-5) << label;
              }
            }
          }
        }
      }
    }
  }
}

/// The verifier's shape: a small ReLU tail with a proof-forcing
/// threshold, identical verdicts across the whole strategy grid.
TEST(StrategyParity, VerifierVerdictsAgreeAcrossStrategiesAndThreads) {
  Rng rng(77);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(5, 8);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{8}));
  auto d2 = std::make_unique<nn::Dense>(8, 2);
  d2->init_he(rng);
  net.add(std::move(d2));

  double sampled_max = -1e100;
  for (int i = 0; i < 200; ++i) {
    Tensor x(Shape{5});
    for (std::size_t j = 0; j < 5; ++j) x[j] = rng.uniform(-1.0, 1.0);
    sampled_max = std::max(sampled_max, net.forward(x)[0]);
  }

  for (const double threshold : {sampled_max + 2.0, sampled_max - 3.0}) {
    verify::VerificationQuery q;
    q.network = &net;
    q.attach_layer = 0;
    q.input_box = absint::uniform_box(5, -1.0, 1.0);
    q.risk.output_at_least(0, 2, threshold);

    bool have_reference = false;
    verify::Verdict reference = verify::Verdict::kUnknown;
    for (const search::NodeStoreKind store :
         {search::NodeStoreKind::kDepthFirst, search::NodeStoreKind::kBestFirst,
          search::NodeStoreKind::kHybrid}) {
      for (const search::BranchingRuleKind branching :
           {search::BranchingRuleKind::kMostFractional,
            search::BranchingRuleKind::kPseudocost,
            search::BranchingRuleKind::kStrongBranching}) {
        for (const std::size_t threads : {1u, 4u}) {
          verify::TailVerifierOptions options;
          options.milp.search.node_store = store;
          options.milp.search.branching = branching;
          options.milp.threads = threads;
          const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
          if (!have_reference) {
            reference = r.verdict;
            have_reference = true;
          }
          EXPECT_EQ(r.verdict, reference)
              << search::node_store_kind_name(store) << "/"
              << search::branching_rule_kind_name(branching) << "/t" << threads
              << " threshold " << threshold;
          if (r.verdict == verify::Verdict::kUnsafe)
            EXPECT_TRUE(r.counterexample_validated);
        }
      }
    }
  }
}

// ------------------------------------------------------ gap reporting

TEST(GapReporting, NodeLimitReportsBestBoundAndGap) {
  // Wide knapsack stopped mid-search: the result must carry the best
  // surviving bound and the gap to the incumbent.
  Rng rng(5);
  MilpProblem p;
  std::vector<lp::LinearTerm> weight_row, obj;
  for (int i = 0; i < 12; ++i) {
    const std::size_t b = p.add_variable(VarType::kBinary, 0.0, 1.0);
    weight_row.push_back({b, rng.uniform(1.0, 3.0)});
    obj.push_back({b, rng.uniform(1.0, 4.0)});
  }
  p.add_row(weight_row, lp::RowSense::kLessEqual, 6.0);
  p.set_objective(obj, lp::Objective::kMaximize);

  BranchAndBoundOptions options;
  options.max_nodes = 8;
  options.search.node_store = search::NodeStoreKind::kBestFirst;
  const MilpResult r = BranchAndBoundSolver(options).solve(p);
  ASSERT_TRUE(r.status == MilpStatus::kFeasible || r.status == MilpStatus::kNodeLimit);
  ASSERT_TRUE(r.have_best_bound);
  if (r.status == MilpStatus::kFeasible) {
    // Maximize: the surviving relaxation bound dominates the incumbent.
    EXPECT_GE(r.best_bound, r.objective - kTol);
    EXPECT_NEAR(r.best_bound_gap, std::abs(r.best_bound - r.objective), kTol);
    EXPECT_NEAR(r.solver_stats.best_bound_gap, r.best_bound_gap, kTol);
  }

  // The full search closes the gap entirely.
  BranchAndBoundOptions full;
  const MilpResult exact = BranchAndBoundSolver(full).solve(p);
  ASSERT_EQ(exact.status, MilpStatus::kOptimal);
  EXPECT_FALSE(exact.have_best_bound);
  EXPECT_DOUBLE_EQ(exact.best_bound_gap, 0.0);
  // The reported bound was sound: no integral point beats it.
  if (r.have_best_bound) EXPECT_LE(exact.objective, r.best_bound + kTol);
}

TEST(GapReporting, BoundTargetServesIncumbentFreeSearches) {
  // Integrally infeasible parity gadget with an objective: stop early
  // and the gap must be measured against the caller's bound target.
  MilpProblem p;
  std::vector<lp::LinearTerm> parity;
  std::vector<lp::LinearTerm> obj;
  for (int i = 0; i < 10; ++i) {
    const std::size_t b = p.add_variable(VarType::kBinary, 0.0, 1.0);
    parity.push_back({b, 1.0});
    obj.push_back({b, 1.0});
  }
  p.add_row(parity, lp::RowSense::kEqual, 5.5);
  p.set_objective(obj, lp::Objective::kMaximize);

  BranchAndBoundOptions options;
  options.max_nodes = 3;
  options.bound_target = 5.0;
  const MilpResult r = BranchAndBoundSolver(options).solve(p);
  ASSERT_EQ(r.status, MilpStatus::kNodeLimit);
  ASSERT_TRUE(r.have_best_bound);
  EXPECT_NEAR(r.best_bound, 5.5, kTol);  // every open relaxation sits on the row
  EXPECT_NEAR(r.best_bound_gap, 0.5, kTol);
  EXPECT_NEAR(r.solver_stats.best_bound_gap, 0.5, kTol);
}

TEST(GapReporting, VerifierNodeLimitUnknownCarriesMarginGap) {
  Rng rng(91);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(6, 10);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{10}));
  auto d2 = std::make_unique<nn::Dense>(10, 2);
  d2->init_he(rng);
  net.add(std::move(d2));

  double sampled_max = -1e100;
  for (int i = 0; i < 200; ++i) {
    Tensor x(Shape{6});
    for (std::size_t j = 0; j < 6; ++j) x[j] = rng.uniform(-1.0, 1.0);
    sampled_max = std::max(sampled_max, net.forward(x)[0]);
  }

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(6, -1.0, 1.0);
  q.risk.output_at_least(0, 2, sampled_max + 1.0);  // forces a branching proof

  verify::TailVerifierOptions options;
  options.milp.max_nodes = 2;  // starve the proof
  const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
  if (r.verdict == verify::Verdict::kUnknown) {
    EXPECT_TRUE(r.hit_node_limit);
    ASSERT_TRUE(r.have_best_bound_gap);
    EXPECT_GE(r.best_bound_gap, 0.0);
    EXPECT_NE(r.note.find("best-bound gap"), std::string::npos) << r.note;
    EXPECT_NE(r.summary().find("gap="), std::string::npos) << r.summary();
  } else {
    // The tightened search occasionally proves these outright; the
    // verdict itself is then the (stronger) regression signal.
    EXPECT_EQ(r.verdict, verify::Verdict::kSafe);
  }
}

TEST(GapReporting, HybridAndBestFirstLeaveSmallerOrEqualGapThanDfsAtLimit) {
  // Best-first expands by bound, so at an equal node budget its proved
  // bound can only be at least as tight as blind DFS on this
  // maximization (equal when both exhaust the interesting frontier).
  Rng rng(13);
  MilpProblem p;
  std::vector<lp::LinearTerm> row, obj;
  for (int i = 0; i < 14; ++i) {
    const std::size_t b = p.add_variable(VarType::kBinary, 0.0, 1.0);
    row.push_back({b, rng.uniform(1.0, 3.0)});
    obj.push_back({b, rng.uniform(1.0, 4.0)});
  }
  p.add_row(row, lp::RowSense::kLessEqual, 7.0);
  p.set_objective(obj, lp::Objective::kMaximize);

  const auto gap_at_limit = [&](search::NodeStoreKind store) {
    BranchAndBoundOptions options;
    options.max_nodes = 10;
    options.search.node_store = store;
    const MilpResult r = BranchAndBoundSolver(options).solve(p);
    return r.have_best_bound ? r.best_bound : 1e100;
  };
  const double dfs = gap_at_limit(search::NodeStoreKind::kDepthFirst);
  const double best = gap_at_limit(search::NodeStoreKind::kBestFirst);
  EXPECT_LE(best, dfs + kTol);
}

}  // namespace
}  // namespace dpv::milp
