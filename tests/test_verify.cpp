// Verifier unit tests on hand-constructed tails with known verdicts:
// risk specs, big-M encodings, stable-neuron elimination, the
// characterizer constraint, the adjacent-difference strengthening (the
// paper's E4 mechanism), BatchNorm tails, and LP bound tightening.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "verify/verifier.hpp"

namespace dpv::verify {
namespace {

using absint::Interval;

/// network computing out = [n1 - n0] from two inputs (identity tail).
nn::Network make_difference_net() {
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->set_parameters(Tensor(Shape{1, 2}, {-1.0, 1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d));
  return net;
}

TEST(RiskSpec, SatisfactionSemantics) {
  RiskSpec risk("test");
  risk.output_at_most(0, 2, 0.5).output_at_least(1, 2, -1.0);
  EXPECT_TRUE(risk.satisfied_by(Tensor::vector1d({0.4, 0.0})));
  EXPECT_FALSE(risk.satisfied_by(Tensor::vector1d({0.6, 0.0})));
  EXPECT_FALSE(risk.satisfied_by(Tensor::vector1d({0.4, -2.0})));
  EXPECT_EQ(risk.inequalities().size(), 2u);
}

TEST(RiskSpec, RangeHelper) {
  RiskSpec risk;
  risk.output_in_range(0, 1, -0.1, 0.1);
  EXPECT_TRUE(risk.satisfied_by(Tensor::vector1d({0.05})));
  EXPECT_FALSE(risk.satisfied_by(Tensor::vector1d({0.2})));
  EXPECT_THROW(risk.output_in_range(0, 1, 1.0, -1.0), ContractViolation);
}

TEST(RiskSpec, RejectsOutOfRangeIndex) {
  RiskSpec risk;
  EXPECT_THROW(risk.output_at_most(2, 2, 0.0), ContractViolation);
}

VerificationQuery make_query(const nn::Network& net, absint::Box box, RiskSpec risk) {
  VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = std::move(box);
  q.risk = std::move(risk);
  return q;
}

TEST(TailVerifier, SafeWhenRiskUnreachable) {
  const nn::Network net = make_difference_net();
  // n0, n1 in [0, 1] -> out in [-1, 1]; risk out >= 1.5 unreachable.
  RiskSpec risk("impossible");
  risk.output_at_least(0, 1, 1.5);
  const VerificationResult r =
      TailVerifier().verify(make_query(net, absint::uniform_box(2, 0.0, 1.0), risk));
  EXPECT_EQ(r.verdict, Verdict::kSafe);
}

TEST(TailVerifier, UnsafeProducesValidatedCounterexample) {
  const nn::Network net = make_difference_net();
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.9);
  const VerificationResult r =
      TailVerifier().verify(make_query(net, absint::uniform_box(2, 0.0, 1.0), risk));
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  EXPECT_TRUE(r.counterexample_validated);
  EXPECT_GE(r.counterexample_output[0], 0.9 - 1e-6);
  // And the activation really lies in the box.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(r.counterexample_activation[i], -1e-9);
    EXPECT_LE(r.counterexample_activation[i], 1.0 + 1e-9);
  }
}

TEST(TailVerifier, DiffBoundsFlipVerdictToSafe) {
  // The paper's Sec. V observation operationalized: the box alone admits
  // the corner (n0, n1) = (0, 1) with out = 0.9+, but the recorded
  // adjacent-difference bound n1 - n0 in [-0.2, 0.2] excludes it.
  const nn::Network net = make_difference_net();
  RiskSpec risk("corner-only");
  risk.output_at_least(0, 1, 0.9);

  VerificationQuery box_only = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  const VerificationResult without = TailVerifier().verify(box_only);
  EXPECT_EQ(without.verdict, Verdict::kUnsafe);

  VerificationQuery with_diff = box_only;
  with_diff.diff_bounds = {Interval(-0.2, 0.2)};
  const VerificationResult with = TailVerifier().verify(with_diff);
  EXPECT_EQ(with.verdict, Verdict::kSafe);
}

TEST(TailVerifier, CharacterizerConstraintExcludesRegion) {
  // Tail: out = n0. Characterizer logit = n0 - 0.5 (h = 1 iff n0 >= 0.5).
  // Risk out <= 0.3 is reachable in the box but not under h = 1.
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->set_parameters(Tensor(Shape{1, 2}, {1.0, 0.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d));

  nn::Network charac;
  auto hc = std::make_unique<nn::Dense>(2, 1);
  hc->set_parameters(Tensor(Shape{1, 2}, {1.0, 0.0}), Tensor::vector1d({-0.5}));
  charac.add(std::move(hc));

  RiskSpec risk("low-output");
  risk.output_at_most(0, 1, 0.3);

  VerificationQuery without = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  EXPECT_EQ(TailVerifier().verify(without).verdict, Verdict::kUnsafe);

  VerificationQuery with = without;
  with.characterizer = &charac;
  const VerificationResult r = TailVerifier().verify(with);
  EXPECT_EQ(r.verdict, Verdict::kSafe);
}

TEST(TailVerifier, CharacterizerLogitReportedOnCounterexample) {
  nn::Network net = make_difference_net();
  nn::Network charac;
  auto hc = std::make_unique<nn::Dense>(2, 1);
  hc->set_parameters(Tensor(Shape{1, 2}, {0.0, 1.0}), Tensor::vector1d({-0.2}));
  charac.add(std::move(hc));
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.5);
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  q.characterizer = &charac;
  const VerificationResult r = TailVerifier().verify(q);
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  EXPECT_GE(r.characterizer_logit, -1e-6);
  EXPECT_TRUE(r.counterexample_validated);
}

nn::Network make_relu_tail() {
  // out = relu(n0 - n1) - relu(n1 - n0) mapped through a final dense.
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 2);
  d1->set_parameters(Tensor(Shape{2, 2}, {1.0, -1.0, -1.0, 1.0}),
                     Tensor::vector1d({0.0, 0.0}));
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{2}));
  auto d2 = std::make_unique<nn::Dense>(2, 1);
  d2->set_parameters(Tensor(Shape{1, 2}, {1.0, -1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d2));
  return net;
}

TEST(TailVerifier, ReluTailExactSemantics) {
  // The net computes n0 - n1 exactly (relu(a) - relu(-a) = a). Risk
  // "out >= 0.9" is reachable at (1, 0) but safe when bounds shrink.
  const nn::Network net = make_relu_tail();
  RiskSpec risk("high");
  risk.output_at_least(0, 1, 0.9);
  const VerificationResult wide =
      TailVerifier().verify(make_query(net, absint::uniform_box(2, 0.0, 1.0), risk));
  EXPECT_EQ(wide.verdict, Verdict::kUnsafe);
  EXPECT_TRUE(wide.counterexample_validated);
  const VerificationResult narrow =
      TailVerifier().verify(make_query(net, absint::uniform_box(2, 0.0, 0.4), risk));
  EXPECT_EQ(narrow.verdict, Verdict::kSafe);
}

TEST(TailVerifier, StableReluElimination) {
  // All-positive box -> the first ReLU is provably active everywhere,
  // so no binaries are needed.
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 2);
  d1->set_parameters(Tensor(Shape{2, 2}, {1.0, 0.0, 0.0, 1.0}),
                     Tensor::vector1d({1.0, 1.0}));
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{2}));
  auto d2 = std::make_unique<nn::Dense>(2, 1);
  d2->set_parameters(Tensor(Shape{1, 2}, {1.0, 1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d2));

  RiskSpec risk("sum-high");
  risk.output_at_least(0, 1, 10.0);
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.5, 1.0), risk);

  TailVerifierOptions with_elim;
  const VerificationResult r1 = TailVerifier(with_elim).verify(q);
  EXPECT_EQ(r1.verdict, Verdict::kSafe);
  EXPECT_EQ(r1.encoding.binaries, 0u);
  EXPECT_EQ(r1.encoding.stable_relus, 2u);

  TailVerifierOptions no_elim;
  no_elim.encode.eliminate_stable_relus = false;
  const VerificationResult r2 = TailVerifier(no_elim).verify(q);
  EXPECT_EQ(r2.verdict, Verdict::kSafe);
  EXPECT_EQ(r2.encoding.binaries, 2u);
}

TEST(TailVerifier, BatchNormTailIsEncodedExactly) {
  nn::Network net;
  auto bn = std::make_unique<nn::BatchNorm>(2, 1e-9);
  bn->set_affine(Tensor::vector1d({2.0, 1.0}), Tensor::vector1d({0.0, 1.0}));
  bn->set_statistics(Tensor::vector1d({0.5, 0.0}), Tensor::vector1d({1.0, 4.0}));
  net.add(std::move(bn));
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->set_parameters(Tensor(Shape{1, 2}, {1.0, 1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d));

  // y = 2*(n0-0.5) + (n1/2 + 1); over [0,1]^2: y in [0, 2.5].
  RiskSpec unreachable("too-high");
  unreachable.output_at_least(0, 1, 2.6);
  EXPECT_EQ(TailVerifier()
                .verify(make_query(net, absint::uniform_box(2, 0.0, 1.0), unreachable))
                .verdict,
            Verdict::kSafe);
  RiskSpec reachable("attainable");
  reachable.output_at_least(0, 1, 2.4);
  const VerificationResult r = TailVerifier().verify(
      make_query(net, absint::uniform_box(2, 0.0, 1.0), reachable));
  EXPECT_EQ(r.verdict, Verdict::kUnsafe);
  EXPECT_TRUE(r.counterexample_validated);
}

TEST(TailVerifier, LpTighteningReducesBinaries) {
  // Chain of dense+relu whose interval bounds are loose; LP tightening
  // should classify at least as many ReLUs stable as intervals do.
  Rng rng(17);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(3, 6);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto d2 = std::make_unique<nn::Dense>(6, 6);
  d2->init_he(rng);
  net.add(std::move(d2));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto d3 = std::make_unique<nn::Dense>(6, 1);
  d3->init_he(rng);
  net.add(std::move(d3));

  RiskSpec risk("probe");
  risk.output_at_least(0, 1, 100.0);
  VerificationQuery q = make_query(net, absint::uniform_box(3, -1.0, 1.0), risk);

  TailVerifierOptions interval_opts;
  const VerificationResult ri = TailVerifier(interval_opts).verify(q);
  TailVerifierOptions lp_opts;
  lp_opts.encode.bounds = BoundMethod::kLpTightening;
  const VerificationResult rl = TailVerifier(lp_opts).verify(q);
  EXPECT_EQ(ri.verdict, Verdict::kSafe);
  EXPECT_EQ(rl.verdict, Verdict::kSafe);
  EXPECT_LE(rl.encoding.binaries, ri.encoding.binaries);
  EXPECT_GT(rl.encoding.tightening_lps, 0u);
}

TEST(Encoder, RejectsConvolutionInTail) {
  nn::Network net;
  net.add(std::make_unique<nn::MaxPool2D>(1, 2, 2, 2));
  VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(4, 0.0, 1.0);
  q.risk.output_at_least(0, 1, 0.0);
  EXPECT_THROW(encode_tail_query(q, {}), ContractViolation);
}

TEST(Encoder, RejectsMismatchedBox) {
  const nn::Network net = make_difference_net();
  RiskSpec risk;
  risk.output_at_least(0, 1, 0.0);
  VerificationQuery q = make_query(net, absint::uniform_box(3, 0.0, 1.0), risk);
  EXPECT_THROW(encode_tail_query(q, {}), ContractViolation);
}

TEST(Encoder, RejectsEmptyRisk) {
  const nn::Network net = make_difference_net();
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), RiskSpec{});
  EXPECT_THROW(encode_tail_query(q, {}), ContractViolation);
}

TEST(Encoder, RejectsWrongDiffBoundCount) {
  const nn::Network net = make_difference_net();
  RiskSpec risk;
  risk.output_at_least(0, 1, 0.0);
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  q.diff_bounds = {Interval(0, 1), Interval(0, 1)};
  EXPECT_THROW(encode_tail_query(q, {}), ContractViolation);
}

TEST(Encoder, StatsAreConsistent) {
  const nn::Network net = make_relu_tail();
  RiskSpec risk;
  risk.output_at_least(0, 1, 0.5);
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  const TailEncoding enc = encode_tail_query(q, {});
  EXPECT_EQ(enc.stats.relu_neurons, 2u);
  EXPECT_EQ(enc.stats.binaries + enc.stats.stable_relus, 2u);
  EXPECT_EQ(enc.input_vars.size(), 2u);
  EXPECT_EQ(enc.output_vars.size(), 1u);
  EXPECT_EQ(enc.stats.variables, enc.problem.variable_count());
}

}  // namespace
}  // namespace dpv::verify
