// Tests for the escalation verifier, safety campaigns, and the encoder's
// generalized pair constraints + triangle relaxation.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "core/escalation.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/verifier.hpp"

namespace dpv::core {
namespace {

using absint::Interval;

/// net computing out = [n1 - n0, n0 + n1] from two inputs.
nn::Network make_two_output_net() {
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 2);
  d->set_parameters(Tensor(Shape{2, 2}, {-1.0, 1.0, 1.0, 1.0}), Tensor::vector1d({0.0, 0.0}));
  net.add(std::move(d));
  return net;
}

TEST(PairConstraints, GeneralPairsRestrictFeasibleRegion) {
  // out0 = n1 - n0 over [0,1]^2 reaches 0.9 only near the (0,1) corner.
  // A (0,1) pair bound excludes it even when passed via pair_bounds.
  const nn::Network net = make_two_output_net();
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, 0.0, 1.0);
  q.risk.output_at_least(0, 2, 0.9);
  EXPECT_EQ(verify::TailVerifier().verify(q).verdict, verify::Verdict::kUnsafe);

  q.pair_bounds.push_back({0, 1, Interval(-0.2, 0.2)});
  EXPECT_EQ(verify::TailVerifier().verify(q).verdict, verify::Verdict::kSafe);
}

TEST(PairConstraints, InvalidIndicesRejected) {
  const nn::Network net = make_two_output_net();
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, 0.0, 1.0);
  q.risk.output_at_least(0, 2, 0.9);
  q.pair_bounds.push_back({0, 7, Interval(-1.0, 1.0)});
  EXPECT_THROW(verify::encode_tail_query(q, {}), ContractViolation);
}

TEST(TriangleRelaxation, DoesNotChangeVerdictsButMayPrune) {
  Rng rng(21);
  for (int trial = 0; trial < 6; ++trial) {
    nn::Network net;
    auto d1 = std::make_unique<nn::Dense>(3, 6);
    d1->init_he(rng);
    net.add(std::move(d1));
    net.add(std::make_unique<nn::ReLU>(Shape{6}));
    auto d2 = std::make_unique<nn::Dense>(6, 1);
    d2->init_he(rng);
    net.add(std::move(d2));

    verify::VerificationQuery q;
    q.network = &net;
    q.attach_layer = 0;
    q.input_box = absint::uniform_box(3, -1.0, 1.0);
    q.risk.output_at_least(0, 1, rng.uniform(-0.5, 2.5));

    verify::TailVerifierOptions with_triangle;
    verify::TailVerifierOptions without_triangle;
    without_triangle.encode.triangle_relaxation = false;
    const verify::VerificationResult a = verify::TailVerifier(with_triangle).verify(q);
    const verify::VerificationResult b = verify::TailVerifier(without_triangle).verify(q);
    EXPECT_EQ(a.verdict, b.verdict) << "trial " << trial;
    if (a.verdict == verify::Verdict::kUnsafe) {
      EXPECT_TRUE(a.counterexample_validated);
      EXPECT_TRUE(b.counterexample_validated);
    }
  }
}

TEST(TriangleRelaxation, PrunesForcedProofTrees) {
  // On a SAFE proof (exhaustive search) the tighter relaxation must not
  // explore more nodes than the plain big-M encoding.
  Rng rng(31);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(4, 10);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{10}));
  auto d2 = std::make_unique<nn::Dense>(10, 1);
  d2->init_he(rng);
  net.add(std::move(d2));

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(4, -1.0, 1.0);
  q.risk.output_at_least(0, 1, 1e6);  // unreachable -> full proof

  verify::TailVerifierOptions with_triangle;
  verify::TailVerifierOptions without_triangle;
  without_triangle.encode.triangle_relaxation = false;
  const auto a = verify::TailVerifier(with_triangle).verify(q);
  const auto b = verify::TailVerifier(without_triangle).verify(q);
  ASSERT_EQ(a.verdict, verify::Verdict::kSafe);
  ASSERT_EQ(b.verdict, verify::Verdict::kSafe);
  EXPECT_LE(a.milp_nodes, b.milp_nodes);
}

/// Perception-style net: dense(2->4) relu | tail dense(4->1) = sum.
nn::Network make_monitored_net(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

TEST(Escalation, SafePropertyStopsAtSomeRungWithMonitor) {
  Rng rng(41);
  const nn::Network net = make_monitored_net(rng);
  std::vector<Tensor> odd;
  for (int i = 0; i < 80; ++i)
    odd.push_back(Tensor::vector1d({rng.uniform(0.0, 0.4), rng.uniform(0.0, 0.4)}));
  double max_out = -1e100;
  for (const Tensor& x : odd) max_out = std::max(max_out, net.forward(x)[0]);

  verify::RiskSpec risk("beyond-reach");
  risk.output_at_least(0, 1, max_out + 5.0);
  const EscalationOutcome outcome =
      EscalationVerifier().verify(net, 2, nullptr, risk, odd);
  EXPECT_EQ(outcome.verdict, SafetyVerdict::kSafeConditional);
  ASSERT_TRUE(outcome.deployed_monitor.has_value());
  ASSERT_FALSE(outcome.steps.empty());
  EXPECT_EQ(outcome.steps.back().verdict, verify::Verdict::kSafe);
  // The deployed monitor accepts the data S̃ was built from.
  for (const Tensor& x : odd)
    EXPECT_TRUE(outcome.deployed_monitor->contains(net.forward_prefix(x, 2)));
}

TEST(Escalation, TrulyUnsafeRunsAllRungs) {
  Rng rng(43);
  const nn::Network net = make_monitored_net(rng);
  std::vector<Tensor> odd;
  for (int i = 0; i < 60; ++i) odd.push_back(Tensor::randn(Shape{2}, rng, 1.0));
  double max_out = -1e100;
  for (const Tensor& x : odd) max_out = std::max(max_out, net.forward(x)[0]);

  // Risk reached by a training point itself: no S̃ refinement can exclude
  // it, so every rung reports UNSAFE.
  verify::RiskSpec risk("reached-by-data");
  risk.output_at_least(0, 1, max_out - 0.01);
  const EscalationOutcome outcome =
      EscalationVerifier().verify(net, 2, nullptr, risk, odd);
  EXPECT_EQ(outcome.verdict, SafetyVerdict::kUnsafe);
  EXPECT_EQ(outcome.steps.size(), 4u);
  EXPECT_TRUE(outcome.decision.counterexample_validated);
  EXPECT_FALSE(outcome.deployed_monitor.has_value());
  EXPECT_NE(outcome.summary().find("UNSAFE"), std::string::npos);
}

TEST(Escalation, SpuriousBoxCounterexampleEliminatedByLaterRung) {
  // Engineer a case where the box admits a counterexample but pairwise
  // bounds exclude it: tail output = n1 - n0 with strongly correlated
  // training activations.
  nn::Network net;
  auto identity = std::make_unique<nn::Dense>(2, 2);
  identity->set_parameters(Tensor(Shape{2, 2}, {1.0, 0.0, 0.0, 1.0}),
                           Tensor::vector1d({0.0, 0.0}));
  net.add(std::move(identity));
  auto readout = std::make_unique<nn::Dense>(2, 1);
  readout->set_parameters(Tensor(Shape{1, 2}, {-1.0, 1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(readout));

  Rng rng(47);
  std::vector<Tensor> odd;
  for (int i = 0; i < 100; ++i) {
    const double base = rng.uniform(-1.0, 1.0);
    odd.push_back(Tensor::vector1d({base, base + rng.uniform(-0.1, 0.1)}));
  }
  // Output = n1 - n0 stays within ~[-0.1, 0.1] on data, but box corners
  // reach ~2.
  verify::RiskSpec risk("large-difference");
  risk.output_at_least(0, 1, 0.5);
  const EscalationOutcome outcome =
      EscalationVerifier().verify(net, 1, nullptr, risk, odd);
  EXPECT_EQ(outcome.verdict, SafetyVerdict::kSafeConditional);
  ASSERT_GE(outcome.steps.size(), 2u);
  EXPECT_EQ(outcome.steps.front().verdict, verify::Verdict::kUnsafe);  // box rung
  EXPECT_EQ(outcome.steps.back().verdict, verify::Verdict::kSafe);
}

train::Dataset labelled_cloud(Rng& rng, std::size_t count, double threshold) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}),
             Tensor::vector1d({x0 > threshold ? 1.0 : 0.0}));
  }
  return data;
}

TEST(Campaign, AggregatesMultipleQueries) {
  Rng rng(53);
  const nn::Network net = make_monitored_net(rng);

  std::vector<CampaignEntry> entries;
  // Entry 1: characterizable property, unreachable risk -> safe.
  verify::RiskSpec unreachable("far-out");
  unreachable.output_at_least(0, 1, 1e6);
  entries.push_back({"x0-positive", labelled_cloud(rng, 200, 0.0),
                     labelled_cloud(rng, 100, 0.0), unreachable});
  // Entry 2: same property, reachable risk -> expected unsafe.
  verify::RiskSpec reachable("reachable");
  reachable.output_at_most(0, 1, 1e6);
  entries.push_back({"x0-positive", labelled_cloud(rng, 200, 0.0),
                     labelled_cloud(rng, 100, 0.0), reachable});
  // Entry 3: random labels -> uncharacterizable.
  train::Dataset noise_train, noise_val;
  Rng label_rng(54);
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::randn(Shape{2}, rng, 1.0);
    const Tensor y = Tensor::vector1d({label_rng.bernoulli(0.5) ? 1.0 : 0.0});
    (i < 140 ? noise_train : noise_val).add(x, y);
  }
  entries.push_back({"coin-flip-property", std::move(noise_train), std::move(noise_val),
                     unreachable});

  WorkflowConfig config;
  config.characterizer.trainer.epochs = 60;
  const CampaignReport report = run_campaign(net, 2, entries, config);
  ASSERT_EQ(report.reports.size(), 3u);
  EXPECT_EQ(report.safe_count + report.unsafe_count + report.unknown_count +
                report.uncharacterizable_count,
            3u);
  EXPECT_GE(report.safe_count, 1u);
  EXPECT_GE(report.unsafe_count, 1u);
  EXPECT_GE(report.uncharacterizable_count, 1u);
  const std::string table = report.format_table();
  EXPECT_NE(table.find("x0-positive"), std::string::npos);
  EXPECT_NE(table.find("tally:"), std::string::npos);
  EXPECT_NE(table.find("not characterizable"), std::string::npos);
}

TEST(Campaign, BudgetReallocationRescuesStarvedEntries) {
  // Two trivially SAFE entries (root-infeasible, 1 node each) donate
  // their unused per-entry budget to a proof that genuinely branches.
  // The budget is derived from an uncapped probe run, so the test pins
  // the mechanism — starve, pool, regrant, rescue — not magic numbers.
  Rng rng(67);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 8);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{8}));
  auto d2 = std::make_unique<nn::Dense>(8, 1);
  d2->init_he(rng);
  net.add(std::move(d2));

  const auto make_entries = [&](double hard_threshold) {
    Rng data_rng(68);
    verify::RiskSpec easy_a("far-out-a"), easy_b("far-out-b");
    easy_a.output_at_least(0, 1, 1e7);
    easy_b.output_at_least(0, 1, 2e7);
    verify::RiskSpec hard("close-call");
    hard.output_at_least(0, 1, hard_threshold);
    std::vector<CampaignEntry> entries;
    entries.push_back({"x0-positive", labelled_cloud(data_rng, 200, 0.0),
                       labelled_cloud(data_rng, 100, 0.0), easy_a});
    entries.push_back({"x0-positive", labelled_cloud(data_rng, 200, 0.0),
                       labelled_cloud(data_rng, 100, 0.0), easy_b});
    entries.push_back({"x0-positive", labelled_cloud(data_rng, 200, 0.0),
                       labelled_cloud(data_rng, 100, 0.0), hard});
    return entries;
  };

  double sampled_max = -1e100;
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::vector1d({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    sampled_max = std::max(sampled_max, net.forward(x)[0]);
  }

  WorkflowConfig config;
  config.characterizer.trainer.epochs = 60;
  // Node-budget mechanics need the B&B to actually run out of nodes;
  // the staged pipeline would settle the easy entries without it.
  config.falsify_first = false;

  // Find a risk threshold whose uncapped search needs real branching
  // (near the reachable boundary either verdict qualifies — a starved
  // UNSAFE hunt is rescued the same way as a starved proof).
  std::vector<CampaignEntry> entries;
  CampaignReport uncapped;
  std::size_t hard_nodes = 0, easy_nodes_total = 0;
  for (const double margin : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    entries = make_entries(sampled_max + margin);
    uncapped = run_campaign(net, 2, entries, config);
    hard_nodes = uncapped.reports[2].safety.verification.milp_nodes;
    easy_nodes_total = uncapped.reports[0].safety.verification.milp_nodes +
                       uncapped.reports[1].safety.verification.milp_nodes;
    if (hard_nodes >= 3) break;
  }
  if (hard_nodes < 3) GTEST_SKIP() << "no branching proof found on this testbed";
  EXPECT_EQ(uncapped.budget_entries_retried, 0u);  // no budget, no pooling

  // Budget low enough to starve the hard entry, high enough that the
  // pooled surplus rescues it: 3B >= hard + easy and B < hard.
  const std::size_t budget =
      std::max<std::size_t>((hard_nodes + easy_nodes_total + 2) / 3, 2);
  ASSERT_LT(budget, hard_nodes);

  WorkflowConfig capped = config;
  capped.entry_node_budget = budget;
  capped.reallocate_node_budget = false;
  const CampaignReport starved = run_campaign(net, 2, entries, capped);
  EXPECT_EQ(starved.reports[2].safety.verdict, SafetyVerdict::kUnknown);
  EXPECT_TRUE(starved.reports[2].safety.verification.hit_node_limit);
  EXPECT_EQ(starved.budget_entries_retried, 0u);

  capped.reallocate_node_budget = true;
  const CampaignReport rescued = run_campaign(net, 2, entries, capped);
  EXPECT_EQ(rescued.budget_nodes_returned,
            2 * budget - easy_nodes_total);  // both easy entries donate
  EXPECT_EQ(rescued.budget_entries_retried, 1u);
  EXPECT_EQ(rescued.budget_nodes_granted, rescued.budget_nodes_returned);
  EXPECT_EQ(rescued.budget_entries_rescued, 1u);
  EXPECT_EQ(rescued.reports[2].safety.verdict, uncapped.reports[2].safety.verdict);
  EXPECT_EQ(rescued.format_table(), uncapped.format_table());
  EXPECT_NE(rescued.format_encoding_summary().find("budget:"), std::string::npos);

  // The PR 2 guarantee extends through re-allocation: tables are
  // bit-identical across campaign thread counts.
  WorkflowConfig threaded = capped;
  threaded.campaign_threads = 2;
  const CampaignReport parallel_rescued = run_campaign(net, 2, entries, threaded);
  EXPECT_EQ(parallel_rescued.format_table(), rescued.format_table());
  EXPECT_EQ(parallel_rescued.budget_entries_rescued, rescued.budget_entries_rescued);
}

TEST(Campaign, RejectsEmptyEntryList) {
  Rng rng(59);
  const nn::Network net = make_monitored_net(rng);
  EXPECT_THROW(run_campaign(net, 2, {}, {}), ContractViolation);
}

}  // namespace
}  // namespace dpv::core
