// Cutting-plane engine tests: tableau accessor identity, cut soundness
// against pools of feasible integer points (no feasible point may ever
// be cut off — a verifier that loses a counterexample reports a false
// SAFE), verdict parity with cuts on/off across both backends at 1 and
// 4 threads, and stats plumbing through the verifier and campaign.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/cuts/cut_engine.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "solver/lp_backend.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

constexpr double kTol = 1e-6;

using lp::LinearTerm;
using lp::LpProblem;
using lp::LpSolution;
using lp::Objective;
using lp::RowSense;
using lp::SolveStatus;
using solver::LpBackendKind;

// ---------------------------------------------------------------- tableau

TEST(TableauAccess, RowOfBasisIdentityHoldsAtTheOptimum) {
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  const std::size_t y = p.add_variable(0.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 2.0}}, RowSense::kLessEqual, 14.0);
  p.add_row({{x, 3.0}, {y, -1.0}}, RowSense::kGreaterEqual, 0.0);
  p.add_row({{x, 1.0}, {y, -1.0}}, RowSense::kLessEqual, 2.0);
  p.set_objective({{x, 3.0}, {y, 4.0}}, Objective::kMaximize);

  auto backend = solver::make_lp_backend(LpBackendKind::kRevisedBounded, {});
  backend->load(p);
  ASSERT_TRUE(backend->supports_tableau());
  const LpSolution sol = backend->solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);

  // The tableau identity x[basic] + sum alpha * x[col] = 0 must hold at
  // the optimum, with nonbasic columns at their recorded resting bound.
  std::size_t rows_read = 0;
  for (std::size_t r = 0; r < p.row_count(); ++r) {
    solver::TableauRow row;
    ASSERT_TRUE(backend->row_of_basis(r, row)) << "row " << r;
    ++rows_read;
    double activity = row.basic_value;
    for (const auto& e : row.entries) {
      const double rest = e.at_upper ? e.up : e.lo;
      activity += e.alpha * rest;
    }
    EXPECT_NEAR(activity, 0.0, 1e-7) << "row " << r;
    // A structural basic column's value must match the solution.
    if (row.basic_col >= 0 && static_cast<std::size_t>(row.basic_col) < p.variable_count())
      EXPECT_NEAR(sol.values[static_cast<std::size_t>(row.basic_col)], row.basic_value, 1e-7);
  }
  EXPECT_EQ(rows_read, p.row_count());
  solver::TableauRow out_of_range;
  EXPECT_FALSE(backend->row_of_basis(p.row_count(), out_of_range));
}

TEST(TableauAccess, DenseBackendDeclinesTableauQueries) {
  LpProblem p;
  p.add_variable(0.0, 1.0);
  p.add_row({{0, 1.0}}, RowSense::kLessEqual, 0.5);
  auto dense = solver::make_lp_backend(LpBackendKind::kDenseTableau, {});
  dense->load(p);
  dense->solve();
  EXPECT_FALSE(dense->supports_tableau());
  solver::TableauRow row;
  EXPECT_FALSE(dense->row_of_basis(0, row));
}

// ------------------------------------------------------------- soundness

double row_activity(const lp::Row& row, const std::vector<double>& x) {
  double activity = 0.0;
  for (const LinearTerm& t : row.terms) activity += t.coeff * x[t.var];
  return activity;
}

bool row_satisfied(const lp::Row& row, const std::vector<double>& x, double tol) {
  const double activity = row_activity(row, x);
  switch (row.sense) {
    case RowSense::kLessEqual:
      return activity <= row.rhs + tol;
    case RowSense::kGreaterEqual:
      return activity >= row.rhs - tol;
    case RowSense::kEqual:
      return std::abs(activity - row.rhs) <= tol;
  }
  return false;
}

/// Runs root cuts on a copy of `p` and returns the appended rows.
std::vector<lp::Row> generate_root_cuts(const milp::MilpProblem& p, LpBackendKind backend,
                                        std::size_t rounds = 6) {
  milp::MilpProblem working = p;
  milp::cuts::CutOptions options;
  options.root_rounds = rounds;
  const milp::cuts::RootCutReport report = milp::cuts::run_root_cuts(
      working, options, backend, lp::SimplexOptions{}, 1e-6);
  const auto& rows = working.relaxation().rows();
  std::vector<lp::Row> cuts(rows.begin() + static_cast<std::ptrdiff_t>(p.relaxation().row_count()),
                            rows.end());
  EXPECT_EQ(cuts.size(), report.cuts_added);
  return cuts;
}

/// For every binary assignment feasible in `p` (feasibility decided by
/// an LP over the fixed binaries), the LP completion is a genuine
/// mixed-integer point: every generated cut must hold on it.
void expect_cuts_sound_by_enumeration(const milp::MilpProblem& p,
                                      const std::vector<lp::Row>& cuts, const char* label) {
  const std::vector<std::size_t>& bins = p.binary_variables();
  ASSERT_LE(bins.size(), 16u) << label;
  auto lp_backend = solver::make_lp_backend(LpBackendKind::kDenseTableau, {});
  lp_backend->load(p.relaxation());
  std::size_t feasible_points = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << bins.size()); ++mask) {
    for (std::size_t c = 0; c < bins.size(); ++c) {
      const double v = (mask >> c) & 1u ? 1.0 : 0.0;
      lp_backend->set_bounds(bins[c], v, v);
    }
    const LpSolution sol = lp_backend->solve();
    if (sol.status != SolveStatus::kOptimal) continue;
    ++feasible_points;
    for (std::size_t k = 0; k < cuts.size(); ++k)
      EXPECT_TRUE(row_satisfied(cuts[k], sol.values, 1e-5))
          << label << ": cut " << k << " removes feasible point with mask " << mask
          << " (activity " << row_activity(cuts[k], sol.values) << " rhs " << cuts[k].rhs
          << ")";
  }
  // The pool must be non-trivial or the test proves nothing.
  EXPECT_GT(feasible_points, 0u) << label;
}

/// Random mixed MILP built around an integer-feasible anchor point, so
/// the soundness pool below is never vacuous.
milp::MilpProblem random_mixed_milp(Rng& rng) {
  milp::MilpProblem p;
  const std::size_t n_bin = static_cast<std::size_t>(rng.uniform_int(3, 6));
  const std::size_t n_cont = static_cast<std::size_t>(rng.uniform_int(1, 3));
  const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(2, 5));
  std::vector<std::size_t> vars;
  std::vector<double> anchor;
  for (std::size_t i = 0; i < n_bin; ++i) {
    vars.push_back(p.add_variable(milp::VarType::kBinary, 0.0, 1.0));
    anchor.push_back(rng.bernoulli(0.5) ? 1.0 : 0.0);
  }
  for (std::size_t i = 0; i < n_cont; ++i) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi = rng.uniform(0.5, 2.0);
    vars.push_back(p.add_variable(milp::VarType::kContinuous, lo, hi));
    anchor.push_back(0.5 * (lo + hi));
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<LinearTerm> terms;
    double at_anchor = 0.0;
    for (std::size_t c = 0; c < vars.size(); ++c) {
      const double coeff = rng.uniform(-3.0, 3.0);
      terms.push_back({vars[c], coeff});
      at_anchor += coeff * anchor[c];
    }
    const int sense = rng.uniform_int(0, 2);
    if (sense == 0)
      p.add_row(terms, RowSense::kLessEqual, at_anchor + rng.uniform(0.1, 2.0));
    else if (sense == 1)
      p.add_row(terms, RowSense::kGreaterEqual, at_anchor - rng.uniform(0.1, 2.0));
    else
      p.add_row(terms, RowSense::kEqual, at_anchor);
  }
  std::vector<LinearTerm> obj;
  for (const std::size_t v : vars) obj.push_back({v, rng.uniform(-2.0, 2.0)});
  p.set_objective(obj, rng.bernoulli(0.5) ? Objective::kMaximize : Objective::kMinimize);
  return p;
}

class CutSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(CutSoundnessSweep, NoFeasibleIntegerPointIsCutOff) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
  const milp::MilpProblem p = random_mixed_milp(rng);
  for (const LpBackendKind backend :
       {LpBackendKind::kRevisedBounded, LpBackendKind::kDenseTableau}) {
    const std::vector<lp::Row> cuts = generate_root_cuts(p, backend);
    expect_cuts_sound_by_enumeration(p, cuts, solver::lp_backend_kind_name(backend));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMixedMilps, CutSoundnessSweep, ::testing::Range(0, 30));

// ---------------------------------------------------- network encodings

nn::Network make_tail_net(Rng& rng, std::size_t in_n, std::size_t hidden) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

verify::VerificationQuery tail_query(const nn::Network& net, std::size_t in_n,
                                     double threshold) {
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(in_n, -1.0, 1.0);
  q.risk.output_at_least(0, 1, threshold);
  return q;
}

/// A threshold above every sampled output (so the verdict is a SAFE
/// proof) but below the LP-relaxation optimum (so the proof branches
/// and the root is fractional — cuts have something to do).
double forcing_threshold(const nn::Network& net, std::size_t in_n, Rng& rng) {
  double sampled_max = -1e100;
  for (int i = 0; i < 2000; ++i) {
    Tensor x(Shape{in_n});
    for (std::size_t j = 0; j < in_n; ++j) x[j] = rng.uniform(-1.0, 1.0);
    sampled_max = std::max(sampled_max, net.forward(x)[0]);
  }
  verify::VerificationQuery probe = tail_query(net, in_n, -1e9);
  verify::TailEncoding enc = verify::encode_tail_query(probe, {});
  enc.problem.relaxation().set_objective({{enc.output_vars[0], 1.0}}, Objective::kMaximize);
  const LpSolution root = lp::SimplexSolver().solve(enc.problem.relaxation());
  const double relax_max =
      root.status == SolveStatus::kOptimal ? root.objective : sampled_max + 1.0;
  return sampled_max + 0.75 * std::max(relax_max - sampled_max, 0.1);
}

TEST(ReluSplitCuts, EncoderRegistersBigMBlocksAndCutsStaySound) {
  Rng rng(77);
  const std::size_t in_n = 3, hidden = 5;
  const nn::Network net = make_tail_net(rng, in_n, hidden);
  // Vacuous risk: the encoding is feasible, so every phase assignment
  // with an LP completion populates the soundness pool.
  const verify::VerificationQuery q = tail_query(net, in_n, -1e9);
  const verify::TailEncoding enc = verify::encode_tail_query(q, {});

  // Every unstable ReLU's block must be on record with its true affine
  // pre-image (hidden width inputs each).
  EXPECT_EQ(enc.problem.relu_splits().size(), enc.stats.binaries);
  for (const milp::ReluSplitInfo& rs : enc.problem.relu_splits()) {
    EXPECT_GE(rs.pre_terms.size(), 2u);
    EXPECT_EQ(enc.problem.variable_type(rs.phase_var), milp::VarType::kBinary);
  }

  // Cuts generated on the real encoding must not cut off any feasible
  // completion of any phase assignment.
  for (const LpBackendKind backend :
       {LpBackendKind::kRevisedBounded, LpBackendKind::kDenseTableau}) {
    const std::vector<lp::Row> cuts = generate_root_cuts(enc.problem, backend);
    expect_cuts_sound_by_enumeration(enc.problem, cuts,
                                     solver::lp_backend_kind_name(backend));
  }
}

// ----------------------------------------------------- parity and gains

TEST(CutParity, VerdictsMatchCutsOnOffAcrossBackendsAndThreads) {
  for (const std::uint64_t seed : {5u, 6u, 7u, 8u}) {
    Rng rng(seed);
    const std::size_t in_n = 3, hidden = 6;
    const nn::Network net = make_tail_net(rng, in_n, hidden);
    // Mix of SAFE proofs (forcing threshold) and easy UNSAFE queries.
    const double threshold = seed % 2 == 0 ? forcing_threshold(net, in_n, rng) : -5.0;
    const verify::VerificationQuery q = tail_query(net, in_n, threshold);

    verify::TailVerifierOptions base;
    base.milp.max_nodes = 20000;
    const verify::VerificationResult reference = verify::TailVerifier(base).verify(q);
    ASSERT_NE(reference.verdict, verify::Verdict::kUnknown) << "seed " << seed;

    for (const LpBackendKind backend :
         {LpBackendKind::kRevisedBounded, LpBackendKind::kDenseTableau}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        // root-only, root+local, and local-only (no working copy).
        for (const auto& [rounds, local] :
             {std::pair<std::size_t, bool>{5, false}, {5, true}, {0, true}}) {
          verify::TailVerifierOptions options = base;
          options.milp.backend = backend;
          options.milp.threads = threads;
          options.milp.cuts.root_rounds = rounds;
          options.milp.cuts.local = local;
          const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
          EXPECT_EQ(r.verdict, reference.verdict)
              << "seed " << seed << " backend " << solver::lp_backend_kind_name(backend)
              << " threads " << threads << " rounds " << rounds << " local " << local;
          if (r.verdict == verify::Verdict::kUnsafe)
            EXPECT_TRUE(r.counterexample_validated) << "seed " << seed;
          if (rounds > 0)
            EXPECT_GT(r.solver_stats.cut_rounds + r.solver_stats.cuts_added, 0u)
                << "cut engine never engaged; seed " << seed;
        }
      }
    }
  }
}

TEST(CutParity, MilpOptimaMatchBruteForceWithCutsEnabled) {
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 3271 + 29);
    const milp::MilpProblem p = random_mixed_milp(rng);

    // Brute force: best objective over feasible binary assignments,
    // completing the continuous part with an LP.
    const std::vector<std::size_t>& bins = p.binary_variables();
    auto lp_backend = solver::make_lp_backend(LpBackendKind::kDenseTableau, {});
    lp_backend->load(p.relaxation());
    const bool maximize = p.relaxation().objective_direction() == Objective::kMaximize;
    bool any = false;
    double best = maximize ? -1e100 : 1e100;
    for (std::size_t mask = 0; mask < (std::size_t{1} << bins.size()); ++mask) {
      for (std::size_t c = 0; c < bins.size(); ++c) {
        const double v = (mask >> c) & 1u ? 1.0 : 0.0;
        lp_backend->set_bounds(bins[c], v, v);
      }
      const LpSolution sol = lp_backend->solve();
      if (sol.status != SolveStatus::kOptimal) continue;
      any = true;
      best = maximize ? std::max(best, sol.objective) : std::min(best, sol.objective);
    }

    milp::BranchAndBoundOptions options;
    options.cuts.root_rounds = 5;
    options.cuts.local = true;
    const milp::MilpResult r = milp::BranchAndBoundSolver(options).solve(p);
    if (!any) {
      EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible) << "seed " << seed;
    } else {
      ASSERT_EQ(r.status, milp::MilpStatus::kOptimal) << "seed " << seed;
      EXPECT_NEAR(r.objective, best, 1e-5) << "seed " << seed;
    }
  }
}

TEST(CutGains, RootCutsNeverGrowAForcedProofTree) {
  Rng rng(123);
  const std::size_t in_n = 4, hidden = 8;
  const nn::Network net = make_tail_net(rng, in_n, hidden);
  const verify::VerificationQuery q =
      tail_query(net, in_n, forcing_threshold(net, in_n, rng));

  verify::TailVerifierOptions off;
  off.milp.max_nodes = 60000;
  verify::TailVerifierOptions on = off;
  on.milp.cuts.root_rounds = 6;

  const verify::VerificationResult a = verify::TailVerifier(off).verify(q);
  const verify::VerificationResult b = verify::TailVerifier(on).verify(q);
  ASSERT_EQ(a.verdict, verify::Verdict::kSafe);
  ASSERT_EQ(b.verdict, verify::Verdict::kSafe);
  // Deterministic instance (serial search, fixed seed): the cut-tightened
  // relaxation must not explore a larger tree.
  EXPECT_LE(b.milp_nodes, a.milp_nodes);
  EXPECT_GT(b.solver_stats.cuts_added, 0u);
  EXPECT_NE(b.summary().find("cuts="), std::string::npos) << b.summary();
  EXPECT_EQ(a.summary().find("cuts="), std::string::npos) << a.summary();
}

// ------------------------------------------------------------- campaign

train::Dataset labelled_cloud(Rng& rng, std::size_t count) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({x0 > 0.0 ? 1.0 : 0.0}));
  }
  return data;
}

TEST(CutPlumbing, CampaignAggregatesCutCounters) {
  Rng rng(211);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 6);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto d2 = std::make_unique<nn::Dense>(6, 2);
  d2->init_he(rng);
  net.add(std::move(d2));

  // Three risk rungs: some resolve UNSAFE, some force a branching
  // proof — at least one lands on a fractional root where the engine
  // separates.
  std::vector<core::CampaignEntry> entries;
  int i = 0;
  for (const double threshold : {0.3, 1.0, 3.0}) {
    verify::RiskSpec risk("rung-" + std::to_string(i));
    risk.output_at_least(0, 2, threshold);
    entries.push_back({"x0-positive-" + std::to_string(i++), labelled_cloud(rng, 50),
                       labelled_cloud(rng, 25), risk});
  }

  core::WorkflowConfig config;
  config.characterizer.trainer.epochs = 15;
  config.assume_guarantee.verifier.milp.cuts.root_rounds = 4;
  // Cut counters only accumulate in the B&B; keep the staged pipeline
  // from settling these queries before the engine runs.
  config.falsify_first = false;
  const core::CampaignReport report = core::run_campaign(net, 1, entries, config);
  EXPECT_GT(report.milp_nodes, 0u);
  EXPECT_GT(report.cut_rounds + report.cuts_added, 0u);
  EXPECT_NE(report.format_encoding_summary().find("cuts:"), std::string::npos)
      << report.format_encoding_summary();
}

}  // namespace
}  // namespace dpv
