// Branch & bound MILP tests: knapsack instances with known optima,
// feasibility/infeasibility proofs, big-M ReLU gadgets, and randomized
// cross-checks against brute-force enumeration of binary assignments.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "milp/branch_and_bound.hpp"

namespace dpv::milp {
namespace {

constexpr double kTol = 1e-5;

TEST(Milp, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6; optimum a=c? enumerate:
  // a+c: w=5 v=17; b+c: w=6 v=20; a+b: w=7 infeasible. Optimum 20.
  MilpProblem p;
  const std::size_t a = p.add_variable(VarType::kBinary, 0.0, 1.0, "a");
  const std::size_t b = p.add_variable(VarType::kBinary, 0.0, 1.0, "b");
  const std::size_t c = p.add_variable(VarType::kBinary, 0.0, 1.0, "c");
  p.add_row({{a, 3.0}, {b, 4.0}, {c, 2.0}}, lp::RowSense::kLessEqual, 6.0);
  p.set_objective({{a, 10.0}, {b, 13.0}, {c, 7.0}}, lp::Objective::kMaximize);

  const MilpResult r = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, kTol);
  EXPECT_NEAR(r.values[a], 0.0, kTol);
  EXPECT_NEAR(r.values[b], 1.0, kTol);
  EXPECT_NEAR(r.values[c], 1.0, kTol);
}

TEST(Milp, IntegralityMatters) {
  // LP relaxation of max x s.t. 2x <= 3 with x binary gives 1.5 -> the
  // MILP must return 1.
  MilpProblem p;
  const std::size_t x = p.add_variable(VarType::kBinary, 0.0, 1.0, "x");
  p.add_row({{x, 2.0}}, lp::RowSense::kLessEqual, 3.0);
  p.set_objective({{x, 1.0}}, lp::Objective::kMaximize);
  const MilpResult r = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, kTol);
}

TEST(Milp, ProvesIntegerInfeasibility) {
  // 0.4 <= x <= 0.6 admits no binary x even though the LP relaxation is
  // feasible.
  MilpProblem p;
  const std::size_t x = p.add_variable(VarType::kBinary, 0.0, 1.0, "x");
  p.add_row({{x, 1.0}}, lp::RowSense::kGreaterEqual, 0.4);
  p.add_row({{x, 1.0}}, lp::RowSense::kLessEqual, 0.6);
  const MilpResult r = BranchAndBoundSolver().solve(p);
  EXPECT_EQ(r.status, MilpStatus::kInfeasible);
}

TEST(Milp, MixedContinuousBinary) {
  // max y s.t. y <= 2 + 3z, y <= 7 - 4z, y in [0, 10], z binary.
  // z=0 -> y<=2; z=1 -> y<=3 (7-4=3 and 2+3=5). Optimum 3 at z=1.
  MilpProblem p;
  const std::size_t y = p.add_variable(VarType::kContinuous, 0.0, 10.0, "y");
  const std::size_t z = p.add_variable(VarType::kBinary, 0.0, 1.0, "z");
  p.add_row({{y, 1.0}, {z, -3.0}}, lp::RowSense::kLessEqual, 2.0);
  p.add_row({{y, 1.0}, {z, 4.0}}, lp::RowSense::kLessEqual, 7.0);
  p.set_objective({{y, 1.0}}, lp::Objective::kMaximize);
  const MilpResult r = BranchAndBoundSolver().solve(p);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);
  EXPECT_NEAR(r.values[z], 1.0, kTol);
}

TEST(Milp, FeasibilityModeStopsEarly) {
  MilpProblem p;
  std::vector<std::size_t> vars;
  for (int i = 0; i < 8; ++i)
    vars.push_back(p.add_variable(VarType::kBinary, 0.0, 1.0));
  // sum = 4 has many solutions; feasibility mode should find one quickly.
  std::vector<lp::LinearTerm> sum;
  for (const std::size_t v : vars) sum.push_back({v, 1.0});
  p.add_row(sum, lp::RowSense::kEqual, 4.0);

  BranchAndBoundOptions options;
  options.stop_at_first_feasible = true;
  const MilpResult r = BranchAndBoundSolver(options).solve(p);
  ASSERT_EQ(r.status, MilpStatus::kFeasible);
  double total = 0.0;
  for (const std::size_t v : vars) {
    EXPECT_NEAR(r.values[v], std::round(r.values[v]), 1e-6);
    total += r.values[v];
  }
  EXPECT_NEAR(total, 4.0, kTol);
}

TEST(Milp, BigMReluGadgetBothPhases) {
  // Encode y = relu(x) for x in [-2, 3] with the verifier's big-M rows
  // and check that forcing x to each side yields the right y.
  for (const double x_fixed : {-1.5, 2.0}) {
    MilpProblem p;
    const std::size_t x = p.add_variable(VarType::kContinuous, x_fixed, x_fixed, "x");
    const std::size_t y = p.add_variable(VarType::kContinuous, 0.0, 3.0, "y");
    const std::size_t z = p.add_variable(VarType::kBinary, 0.0, 1.0, "z");
    p.add_row({{y, 1.0}, {x, -1.0}}, lp::RowSense::kGreaterEqual, 0.0);
    p.add_row({{y, 1.0}, {z, -3.0}}, lp::RowSense::kLessEqual, 0.0);
    p.add_row({{y, 1.0}, {x, -1.0}, {z, 2.0}}, lp::RowSense::kLessEqual, 2.0);
    p.set_objective({{y, 1.0}}, lp::Objective::kMaximize);
    const MilpResult r = BranchAndBoundSolver().solve(p);
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_NEAR(r.values[y], std::max(x_fixed, 0.0), kTol) << "x = " << x_fixed;
  }
}

TEST(Milp, NodeLimitReportsUnknown) {
  MilpProblem p;
  std::vector<lp::LinearTerm> parity;
  for (int i = 0; i < 10; ++i)
    parity.push_back({p.add_variable(VarType::kBinary, 0.0, 1.0), 1.0});
  // sum == 5.5 is integrally infeasible but needs search to prove.
  p.add_row(parity, lp::RowSense::kEqual, 5.5);
  BranchAndBoundOptions options;
  options.max_nodes = 1;  // starve the solver
  const MilpResult r = BranchAndBoundSolver(options).solve(p);
  EXPECT_EQ(r.status, MilpStatus::kNodeLimit);
}

// Property sweep: random small MILPs cross-checked against brute force
// over all binary assignments (continuous part solved by LP).
class MilpBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpBruteForce, MatchesEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::size_t n_bin = static_cast<std::size_t>(rng.uniform_int(2, 5));
  const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 4));

  MilpProblem p;
  std::vector<std::size_t> bins;
  for (std::size_t i = 0; i < n_bin; ++i)
    bins.push_back(p.add_variable(VarType::kBinary, 0.0, 1.0));
  std::vector<std::vector<double>> coeffs(n_rows, std::vector<double>(n_bin));
  std::vector<double> rhs(n_rows);
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<lp::LinearTerm> terms;
    for (std::size_t c = 0; c < n_bin; ++c) {
      coeffs[r][c] = rng.uniform(-3.0, 3.0);
      terms.push_back({bins[c], coeffs[r][c]});
    }
    rhs[r] = rng.uniform(-2.0, 4.0);
    p.add_row(terms, lp::RowSense::kLessEqual, rhs[r]);
  }
  std::vector<double> obj(n_bin);
  std::vector<lp::LinearTerm> obj_terms;
  for (std::size_t c = 0; c < n_bin; ++c) {
    obj[c] = rng.uniform(-2.0, 2.0);
    obj_terms.push_back({bins[c], obj[c]});
  }
  p.set_objective(obj_terms, lp::Objective::kMaximize);

  // Brute force.
  double best = -1e100;
  bool any = false;
  for (std::size_t mask = 0; mask < (1u << n_bin); ++mask) {
    bool feasible = true;
    for (std::size_t r = 0; r < n_rows && feasible; ++r) {
      double act = 0.0;
      for (std::size_t c = 0; c < n_bin; ++c)
        if (mask & (1u << c)) act += coeffs[r][c];
      feasible = act <= rhs[r] + 1e-9;
    }
    if (!feasible) continue;
    any = true;
    double value = 0.0;
    for (std::size_t c = 0; c < n_bin; ++c)
      if (mask & (1u << c)) value += obj[c];
    best = std::max(best, value);
  }

  const MilpResult r = BranchAndBoundSolver().solve(p);
  if (!any) {
    EXPECT_EQ(r.status, MilpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, MilpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(r.objective, best, 1e-5) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMilps, MilpBruteForce, ::testing::Range(0, 30));

}  // namespace
}  // namespace dpv::milp
