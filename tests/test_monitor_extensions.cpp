// Tests for the generalized RelationMonitor and the margin calibration
// machinery.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "monitor/calibration.hpp"
#include "monitor/diff_monitor.hpp"
#include "monitor/relation_monitor.hpp"

namespace dpv::monitor {
namespace {

TEST(RelationMonitor, PairFactories) {
  EXPECT_EQ(RelationMonitor::adjacent_pairs(5).size(), 4u);
  EXPECT_EQ(RelationMonitor::stride_pairs(5, 2).size(), 3u);
  EXPECT_EQ(RelationMonitor::stride_pairs(5, 4).size(), 1u);
  EXPECT_TRUE(RelationMonitor::stride_pairs(5, 5).empty());
  EXPECT_EQ(RelationMonitor::all_pairs(5).size(), 10u);
  EXPECT_THROW(RelationMonitor::stride_pairs(5, 0), ContractViolation);
}

TEST(RelationMonitor, AdjacentPairsMatchDiffMonitor) {
  Rng rng(3);
  std::vector<Tensor> acts;
  for (int i = 0; i < 50; ++i) acts.push_back(Tensor::randn(Shape{6}, rng, 1.5));
  const DiffMonitor diff = DiffMonitor::from_activations(acts);
  const RelationMonitor rel =
      RelationMonitor::from_activations(acts, RelationMonitor::adjacent_pairs(6));
  ASSERT_EQ(rel.pair_bounds().size(), diff.diff_bounds().size());
  for (std::size_t i = 0; i < rel.pair_bounds().size(); ++i) {
    EXPECT_DOUBLE_EQ(rel.pair_bounds()[i].lo, diff.diff_bounds()[i].lo);
    EXPECT_DOUBLE_EQ(rel.pair_bounds()[i].hi, diff.diff_bounds()[i].hi);
  }
  // Containment decisions coincide as well.
  for (int i = 0; i < 50; ++i) {
    const Tensor probe = Tensor::randn(Shape{6}, rng, 2.0);
    EXPECT_EQ(rel.contains(probe), diff.contains(probe));
  }
}

TEST(RelationMonitor, AllPairsIsStrictlyStronger) {
  // Data where n2 - n0 is tightly coupled but adjacent diffs are loose:
  // n1 jumps around freely.
  Rng rng(5);
  std::vector<Tensor> acts;
  for (int i = 0; i < 80; ++i) {
    const double base = rng.uniform(-1.0, 1.0);
    acts.push_back(Tensor::vector1d({base, rng.uniform(-2.0, 2.0), base + 0.3}));
  }
  const RelationMonitor adjacent =
      RelationMonitor::from_activations(acts, RelationMonitor::adjacent_pairs(3));
  const RelationMonitor all =
      RelationMonitor::from_activations(acts, RelationMonitor::all_pairs(3));
  // A point keeping adjacent differences plausible but breaking the
  // (0, 2) coupling: n2 - n0 = 1.0 while the data only ever shows +0.3.
  // (n2 = 1.0 stays inside the recorded box since base ranges to ~1.)
  const Tensor probe = Tensor::vector1d({0.0, 0.6, 1.0});
  EXPECT_TRUE(adjacent.box_monitor().contains(probe));
  if (adjacent.contains(probe)) {
    EXPECT_FALSE(all.contains(probe));
  } else {
    // Even if the adjacent monitor happens to reject it, the all-pairs
    // monitor must reject too (monotone strengthening).
    EXPECT_FALSE(all.contains(probe));
  }
  // Every training point passes both.
  for (const Tensor& a : acts) {
    EXPECT_TRUE(adjacent.contains(a));
    EXPECT_TRUE(all.contains(a));
  }
}

TEST(RelationMonitor, ViolationsNamePairs) {
  std::vector<Tensor> acts = {Tensor::vector1d({0.0, 5.0, 0.25}),
                              Tensor::vector1d({0.25, 5.5, 0.5})};
  const RelationMonitor mon =
      RelationMonitor::from_activations(acts, {{0, 2}});
  const auto violations = mon.violations(Tensor::vector1d({0.25, 5.25, 0.25}));
  // n2 - n0 = 0.0, recorded range [0.25, 0.25] -> violation mentioning
  // the (0, 2) pair.
  bool found = false;
  for (const std::string& v : violations)
    if (v.find("n2 - n0") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(RelationMonitor, SerializationRoundTrip) {
  Rng rng(9);
  std::vector<Tensor> acts;
  for (int i = 0; i < 30; ++i) acts.push_back(Tensor::randn(Shape{4}, rng, 1.0));
  const RelationMonitor mon = RelationMonitor::from_activations(
      acts, RelationMonitor::all_pairs(4), 0.05);
  std::stringstream buffer;
  mon.save(buffer);
  const RelationMonitor restored = RelationMonitor::load(buffer);
  ASSERT_EQ(restored.pairs().size(), mon.pairs().size());
  for (std::size_t k = 0; k < mon.pairs().size(); ++k) {
    EXPECT_EQ(restored.pairs()[k].first, mon.pairs()[k].first);
    EXPECT_EQ(restored.pairs()[k].second, mon.pairs()[k].second);
    EXPECT_DOUBLE_EQ(restored.pair_bounds()[k].lo, mon.pair_bounds()[k].lo);
    EXPECT_DOUBLE_EQ(restored.pair_bounds()[k].hi, mon.pair_bounds()[k].hi);
  }
}

TEST(RelationMonitor, RejectsInvalidPairs) {
  std::vector<Tensor> acts = {Tensor::vector1d({1.0, 2.0})};
  EXPECT_THROW(RelationMonitor::from_activations(acts, {{0, 5}}), ContractViolation);
  EXPECT_THROW(RelationMonitor::from_activations(acts, {{1, 1}}), ContractViolation);
}

std::vector<Tensor> gaussian_cloud(Rng& rng, std::size_t count, double stddev) {
  std::vector<Tensor> acts;
  for (std::size_t i = 0; i < count; ++i)
    acts.push_back(Tensor::randn(Shape{5}, rng, stddev));
  return acts;
}

TEST(Calibration, WarningRateMatchesManualCount) {
  Rng rng(11);
  const std::vector<Tensor> train = gaussian_cloud(rng, 100, 1.0);
  const DiffMonitor mon = DiffMonitor::from_activations(train);
  const std::vector<Tensor> probe = gaussian_cloud(rng, 50, 1.5);
  std::size_t manual = 0;
  for (const Tensor& a : probe)
    if (!mon.contains(a)) ++manual;
  EXPECT_DOUBLE_EQ(warning_rate(mon, probe), static_cast<double>(manual) / 50.0);
}

TEST(Calibration, PicksSmallestQualifyingMargin) {
  Rng rng(13);
  // Small training sample + larger same-distribution holdout: the exact
  // hull will fire on the holdout tail, margins shrink the rate.
  const std::vector<Tensor> train = gaussian_cloud(rng, 40, 1.0);
  const std::vector<Tensor> holdout = gaussian_cloud(rng, 400, 1.0);
  const CalibrationResult zero_target = calibrate_margin(train, holdout, 1.0);
  EXPECT_DOUBLE_EQ(zero_target.margin_fraction, 0.0);  // any rate allowed

  const CalibrationResult strict = calibrate_margin(train, holdout, 0.02);
  EXPECT_LE(strict.holdout_warning_rate, 0.02 + 1e-12);
  // The calibrated monitor still accepts all training data.
  for (const Tensor& a : train) EXPECT_TRUE(strict.monitor.contains(a));
  // And strictness costs margin: the strict margin is at least the lax one.
  EXPECT_GE(strict.margin_fraction, zero_target.margin_fraction);
}

TEST(Calibration, FallsBackToLargestMarginWhenNoneQualifies) {
  Rng rng(17);
  const std::vector<Tensor> train = gaussian_cloud(rng, 30, 0.1);
  // Holdout from a very different distribution: nothing will satisfy a
  // near-zero target.
  const std::vector<Tensor> holdout = gaussian_cloud(rng, 100, 5.0);
  const CalibrationResult result = calibrate_margin(train, holdout, 0.0, {0.0, 0.1});
  EXPECT_DOUBLE_EQ(result.margin_fraction, 0.1);
  EXPECT_GT(result.holdout_warning_rate, 0.0);
}

TEST(Calibration, ValidatesArguments) {
  Rng rng(19);
  const std::vector<Tensor> train = gaussian_cloud(rng, 10, 1.0);
  EXPECT_THROW(calibrate_margin({}, train, 0.1), ContractViolation);
  EXPECT_THROW(calibrate_margin(train, {}, 0.1), ContractViolation);
  EXPECT_THROW(calibrate_margin(train, train, 2.0), ContractViolation);
  EXPECT_THROW(calibrate_margin(train, train, 0.1, {0.2, 0.1}), ContractViolation);
  EXPECT_THROW(calibrate_margin(train, train, 0.1, {}), ContractViolation);
}

// Property sweep: the calibrated warning rate is monotonically
// non-increasing in the margin.
class CalibrationMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CalibrationMonotonicity, RateDecreasesWithMargin) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const std::vector<Tensor> train = gaussian_cloud(rng, 50, 1.0);
  const std::vector<Tensor> holdout = gaussian_cloud(rng, 200, 1.2);
  double previous = 1.1;
  for (const double margin : {0.0, 0.05, 0.2, 0.5}) {
    const DiffMonitor mon = DiffMonitor::from_activations(train, margin);
    const double rate = warning_rate(mon, holdout);
    EXPECT_LE(rate, previous + 1e-12) << "margin " << margin;
    previous = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationMonotonicity, ::testing::Range(0, 6));

}  // namespace
}  // namespace dpv::monitor
