// Run-control tests: token semantics (cancel / poll budget / deadline /
// parent chaining) and graceful deadline degradation at every layer —
// the simplex returns kDeadline, branch & bound stops with its
// post-mortem intact, the verifier degrades to an explained UNKNOWN, and
// the falsifier returns early as "not falsified". The honesty property
// under test everywhere: an expiring run may lose a verdict, it may
// never invent one.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "absint/box_domain.hpp"
#include "common/rng.hpp"
#include "common/run_control.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/falsifier.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

// ---------------------------------------------------------------------
// Token semantics.

TEST(RunControlToken, CancelLatchesImmediately) {
  RunControl rc;
  EXPECT_FALSE(rc.expired());
  rc.cancel();
  EXPECT_TRUE(rc.expired());
  EXPECT_TRUE(rc.expired());  // latched, never reverts
}

TEST(RunControlToken, PollBudgetExpiresAfterExactlyNPolls) {
  RunControl rc;
  rc.set_poll_budget(3);
  EXPECT_FALSE(rc.expired());
  EXPECT_FALSE(rc.expired());
  EXPECT_FALSE(rc.expired());
  EXPECT_TRUE(rc.expired());  // 4th poll trips the budget
  EXPECT_TRUE(rc.expired());  // and it latches

  RunControl zero;
  zero.set_poll_budget(0);
  EXPECT_TRUE(zero.expired());  // zero budget: first poll expires
}

TEST(RunControlToken, DeadlineSemantics) {
  RunControl immediate;
  immediate.set_deadline_after(0.0);
  EXPECT_TRUE(immediate.expired());

  RunControl past;
  past.set_deadline_after(-5.0);
  EXPECT_TRUE(past.expired());

  RunControl future;
  future.set_deadline_after(3600.0);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_seconds(), 3000.0);
}

TEST(RunControlToken, ParentChainPropagatesOneWay) {
  RunControl parent;
  RunControl child(&parent);
  EXPECT_FALSE(child.expired());
  parent.cancel();
  EXPECT_TRUE(child.expired());  // parent expiry reaches the child

  RunControl parent2;
  RunControl child2(&parent2);
  child2.cancel();
  EXPECT_TRUE(child2.expired());
  EXPECT_FALSE(parent2.expired());  // child expiry never leaks upward
}

TEST(RunControlToken, NullSafeHelper) {
  EXPECT_FALSE(run_expired(nullptr));
  RunControl rc;
  EXPECT_FALSE(run_expired(&rc));
  rc.cancel();
  EXPECT_TRUE(run_expired(&rc));
}

// ---------------------------------------------------------------------
// LP layer: the revised simplex polls on entry and every 64 pivots.

lp::LpProblem textbook_lp() {
  lp::LpProblem p;
  const std::size_t x = p.add_variable(0.0, 100.0, "x");
  const std::size_t y = p.add_variable(0.0, 100.0, "y");
  p.add_row({{x, 1.0}}, lp::RowSense::kLessEqual, 4.0);
  p.add_row({{y, 2.0}}, lp::RowSense::kLessEqual, 12.0);
  p.add_row({{x, 3.0}, {y, 2.0}}, lp::RowSense::kLessEqual, 18.0);
  p.set_objective({{x, 3.0}, {y, 5.0}}, lp::Objective::kMaximize);
  return p;
}

TEST(RunControlSimplex, ExpiredControlReturnsDeadlineStatus) {
  const lp::LpProblem p = textbook_lp();

  RunControl rc;
  rc.cancel();
  lp::SimplexOptions options;
  options.run_control = &rc;
  lp::RevisedSimplex solver(options);
  solver.load(p);
  const lp::LpSolution cut = solver.solve();
  EXPECT_EQ(cut.status, lp::SolveStatus::kDeadline);

  // The same problem without a control solves to optimality — the
  // deadline status is attributable to the token, nothing else.
  lp::RevisedSimplex clean;
  clean.load(p);
  EXPECT_EQ(clean.solve().status, lp::SolveStatus::kOptimal);
}

TEST(RunControlSimplex, GenerousBudgetDoesNotPerturbTheOptimum) {
  RunControl rc;
  rc.set_poll_budget(1000000);
  lp::SimplexOptions options;
  options.run_control = &rc;
  lp::RevisedSimplex solver(options);
  solver.load(textbook_lp());
  const lp::LpSolution s = solver.solve();
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
}

// ---------------------------------------------------------------------
// MILP layer: branch & bound checks the token at every node pop.

milp::MilpProblem small_knapsack() {
  milp::MilpProblem p;
  const std::size_t a = p.add_variable(milp::VarType::kBinary, 0.0, 1.0, "a");
  const std::size_t b = p.add_variable(milp::VarType::kBinary, 0.0, 1.0, "b");
  const std::size_t c = p.add_variable(milp::VarType::kBinary, 0.0, 1.0, "c");
  p.add_row({{a, 3.0}, {b, 4.0}, {c, 2.0}}, lp::RowSense::kLessEqual, 6.0);
  p.set_objective({{a, 10.0}, {b, 13.0}, {c, 7.0}}, lp::Objective::kMaximize);
  return p;
}

TEST(RunControlMilp, ExpiredControlStopsWithoutAVerdict) {
  RunControl rc;
  rc.cancel();
  milp::BranchAndBoundOptions options;
  options.run_control = &rc;
  const milp::MilpResult r = milp::BranchAndBoundSolver(options).solve(small_knapsack());
  EXPECT_TRUE(r.deadline_expired);
  EXPECT_NE(r.status, milp::MilpStatus::kOptimal);
  EXPECT_NE(r.status, milp::MilpStatus::kInfeasible);
}

TEST(RunControlMilp, EveryPollBudgetIsHonest) {
  // Sweep expiry through the whole search: at every cut point the solver
  // either finished (then the answer must equal the unlimited optimum)
  // or reports deadline_expired — never a different "verdict".
  const milp::MilpProblem p = small_knapsack();
  const milp::MilpResult full = milp::BranchAndBoundSolver().solve(p);
  ASSERT_EQ(full.status, milp::MilpStatus::kOptimal);
  bool saw_expiry = false;
  bool saw_completion = false;
  for (std::uint64_t budget = 0; budget <= 4096; budget = budget == 0 ? 1 : budget * 2) {
    RunControl rc;
    rc.set_poll_budget(budget);
    milp::BranchAndBoundOptions options;
    options.run_control = &rc;
    const milp::MilpResult r = milp::BranchAndBoundSolver(options).solve(p);
    if (r.deadline_expired) {
      saw_expiry = true;
      EXPECT_NE(r.status, milp::MilpStatus::kOptimal) << "budget " << budget;
    } else {
      saw_completion = true;
      ASSERT_EQ(r.status, milp::MilpStatus::kOptimal) << "budget " << budget;
      EXPECT_NEAR(r.objective, full.objective, 1e-6) << "budget " << budget;
    }
  }
  EXPECT_TRUE(saw_expiry);      // tightest budgets must cut the search
  EXPECT_TRUE(saw_completion);  // loosest budgets must not
}

// ---------------------------------------------------------------------
// Verify layer: explained UNKNOWNs, never wrong verdicts.

/// dense(2->8) relu dense(8->1) tail over the full network (attach 0).
nn::Network small_net(unsigned seed) {
  Rng rng(seed);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 8);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{8}));
  auto d2 = std::make_unique<nn::Dense>(8, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

verify::VerificationQuery reachable_query(const nn::Network& net) {
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, -1.0, 1.0);
  q.risk.output_at_least(0, 1, 0.0);
  return q;
}

TEST(RunControlVerifier, PreExpiredControlDegradesToExplainedUnknown) {
  const nn::Network net = small_net(91);
  RunControl rc;
  rc.cancel();
  verify::TailVerifierOptions options;
  options.run_control = &rc;
  const verify::VerificationResult r =
      verify::TailVerifier(options).verify(reachable_query(net));
  EXPECT_EQ(r.verdict, verify::Verdict::kUnknown);
  EXPECT_TRUE(r.hit_deadline);
  EXPECT_FALSE(r.hit_node_limit);  // distinct resource reason
  EXPECT_NE(r.note.find("deadline expired"), std::string::npos) << r.note;
}

TEST(RunControlVerifier, TimeBudgetBuildsAChildDeadline) {
  const nn::Network net = small_net(91);
  verify::TailVerifierOptions options;
  options.time_budget_seconds = 1e-9;  // expires before any stage runs
  const verify::VerificationResult r =
      verify::TailVerifier(options).verify(reachable_query(net));
  EXPECT_EQ(r.verdict, verify::Verdict::kUnknown);
  EXPECT_TRUE(r.hit_deadline);
  EXPECT_NE(r.note.find("deadline expired"), std::string::npos) << r.note;

  // A generous budget must leave the verdict untouched.
  verify::TailVerifierOptions roomy;
  roomy.time_budget_seconds = 3600.0;
  const verify::VerificationResult full =
      verify::TailVerifier(roomy).verify(reachable_query(net));
  EXPECT_FALSE(full.hit_deadline);
  EXPECT_NE(full.verdict, verify::Verdict::kUnknown);
}

TEST(RunControlVerifier, EveryPollBudgetIsHonest) {
  // The deadline can land between any two polls of the whole pipeline
  // (falsify starts, encode, B&B pops, simplex pivots). Wherever it
  // lands, the result is either the unlimited verdict or an explained
  // deadline UNKNOWN — never a flipped verdict.
  const nn::Network net = small_net(92);
  const verify::VerificationQuery q = reachable_query(net);
  const verify::VerificationResult full = verify::TailVerifier().verify(q);
  ASSERT_NE(full.verdict, verify::Verdict::kUnknown);
  bool saw_expiry = false;
  for (std::uint64_t budget = 0; budget <= 65536; budget = budget == 0 ? 1 : budget * 4) {
    RunControl rc;
    rc.set_poll_budget(budget);
    verify::TailVerifierOptions options;
    options.run_control = &rc;
    const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
    if (r.hit_deadline) {
      saw_expiry = true;
      EXPECT_EQ(r.verdict, verify::Verdict::kUnknown) << "budget " << budget;
      EXPECT_NE(r.note.find("deadline expired"), std::string::npos) << "budget " << budget;
    } else {
      EXPECT_EQ(r.verdict, full.verdict) << "budget " << budget;
    }
  }
  EXPECT_TRUE(saw_expiry);
}

TEST(RunControlFalsifier, ExpiredControlReturnsNotFalsified) {
  // Early-out is sound for an attack: "not falsified" just forwards the
  // query to the next stage, which is itself deadline-checked.
  const nn::Network net = small_net(93);
  verify::VerificationQuery q = reachable_query(net);
  verify::FalsifyOptions options;
  options.enabled = true;
  RunControl rc;
  rc.cancel();
  options.run_control = &rc;
  const verify::FalsifyReport r = verify::falsify_query(q, options);
  EXPECT_FALSE(r.falsified);
  EXPECT_EQ(r.starts, 0u);
}

}  // namespace
}  // namespace dpv
