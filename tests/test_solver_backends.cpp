// Solver backend layer tests: dense-tableau vs revised-bounded parity on
// LPs and MILPs, warm-start correctness and economy, parallel branch &
// bound verdict invariance, and campaign determinism across thread
// counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <regex>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "lp/revised_simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "solver/lp_backend.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

constexpr double kTol = 1e-5;

using lp::LinearTerm;
using lp::LpProblem;
using lp::LpSolution;
using lp::Objective;
using lp::RowSense;
using lp::SolveStatus;
using solver::LpBackendKind;

std::unique_ptr<solver::LpBackend> backend_for(LpBackendKind kind) {
  return solver::make_lp_backend(kind, {});
}

/// Solves `p` on both backends and checks status (and objective when
/// optimal) agree.
void expect_lp_parity(const LpProblem& p, const char* label) {
  auto dense = backend_for(LpBackendKind::kDenseTableau);
  auto revised = backend_for(LpBackendKind::kRevisedBounded);
  dense->load(p);
  revised->load(p);
  const LpSolution a = dense->solve();
  const LpSolution b = revised->solve();
  ASSERT_EQ(a.status, b.status) << label;
  if (a.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective, kTol) << label;
    // Both points must satisfy every row and box of the problem.
    for (const auto& sol : {a, b}) {
      for (std::size_t v = 0; v < p.variable_count(); ++v) {
        EXPECT_GE(sol.values[v], p.lower_bound(v) - kTol) << label;
        EXPECT_LE(sol.values[v], p.upper_bound(v) + kTol) << label;
      }
      for (const auto& row : p.rows()) {
        double activity = 0.0;
        for (const LinearTerm& t : row.terms) activity += t.coeff * sol.values[t.var];
        if (row.sense == RowSense::kLessEqual) EXPECT_LE(activity, row.rhs + kTol) << label;
        if (row.sense == RowSense::kGreaterEqual)
          EXPECT_GE(activity, row.rhs - kTol) << label;
        if (row.sense == RowSense::kEqual) EXPECT_NEAR(activity, row.rhs, kTol) << label;
      }
    }
  }
}

TEST(BackendParity, TextbookMaximization) {
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 100.0, "x");
  const std::size_t y = p.add_variable(0.0, 100.0, "y");
  p.add_row({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  p.add_row({{y, 2.0}}, RowSense::kLessEqual, 12.0);
  p.add_row({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 18.0);
  p.set_objective({{x, 3.0}, {y, 5.0}}, Objective::kMaximize);
  expect_lp_parity(p, "textbook");

  auto revised = backend_for(LpBackendKind::kRevisedBounded);
  revised->load(p);
  const LpSolution s = revised->solve();
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.values[x], 2.0, kTol);
  EXPECT_NEAR(s.values[y], 6.0, kTol);
}

TEST(BackendParity, EqualityAndNegativeBounds) {
  LpProblem p;
  const std::size_t x = p.add_variable(-50.0, 50.0, "x");
  const std::size_t y = p.add_variable(-50.0, 50.0, "y");
  p.add_row({{x, 1.0}, {y, 2.0}}, RowSense::kEqual, 8.0);
  p.add_row({{x, 1.0}, {y, -1.0}}, RowSense::kEqual, 2.0);
  p.set_objective({{x, 1.0}, {y, 1.0}}, Objective::kMinimize);
  expect_lp_parity(p, "equalities");
}

TEST(BackendParity, Infeasibility) {
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  p.add_row({{x, 1.0}}, RowSense::kGreaterEqual, 5.0);
  p.add_row({{x, 1.0}}, RowSense::kLessEqual, 3.0);
  expect_lp_parity(p, "infeasible");
}

TEST(BackendParity, PureBoundsAndFixedVariables) {
  LpProblem p;
  const std::size_t x = p.add_variable(-1.5, 2.5, "x");
  const std::size_t y = p.add_variable(0.5, 3.0, "y");
  const std::size_t z = p.add_variable(2.0, 2.0, "z");  // fixed
  p.add_row({{z, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 6.0);
  p.set_objective({{x, 1.0}, {y, -1.0}}, Objective::kMinimize);
  expect_lp_parity(p, "bounds+fixed");
}

TEST(BackendParity, RedundantEqualityRows) {
  LpProblem p;
  const std::size_t x = p.add_variable(-10.0, 10.0, "x");
  const std::size_t y = p.add_variable(-10.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 4.0);
  p.add_row({{x, 2.0}, {y, 2.0}}, RowSense::kEqual, 8.0);
  p.set_objective({{x, 1.0}}, Objective::kMaximize);
  expect_lp_parity(p, "redundant-equalities");
}

/// Random box-bounded LPs with a known interior point: both backends must
/// agree on status and optimum.
class BackendRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(BackendRandomLp, StatusAndObjectiveAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 10));

  LpProblem p;
  std::vector<double> interior(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = rng.uniform(0.5, 5.0);
    p.add_variable(lo, hi);
    interior[i] = 0.5 * (lo + hi);
  }
  for (std::size_t r = 0; r < m; ++r) {
    double activity = 0.0;
    std::vector<LinearTerm> terms;
    for (std::size_t c = 0; c < n; ++c) {
      const double coeff = rng.uniform(-2.0, 2.0);
      terms.push_back({c, coeff});
      activity += coeff * interior[c];
    }
    // Mix senses; keep the interior point feasible.
    const int sense = rng.uniform_int(0, 2);
    if (sense == 0) {
      p.add_row(terms, RowSense::kLessEqual, activity + rng.uniform(0.1, 2.0));
    } else if (sense == 1) {
      p.add_row(terms, RowSense::kGreaterEqual, activity - rng.uniform(0.1, 2.0));
    } else {
      p.add_row(terms, RowSense::kEqual, activity);
    }
  }
  std::vector<LinearTerm> objective;
  for (std::size_t c = 0; c < n; ++c) objective.push_back({c, rng.uniform(-1.0, 1.0)});
  p.set_objective(objective, rng.bernoulli(0.5) ? Objective::kMinimize
                                                : Objective::kMaximize);
  expect_lp_parity(p, "random-lp");
}

INSTANTIATE_TEST_SUITE_P(RandomLps, BackendRandomLp, ::testing::Range(0, 40));

TEST(WarmStart, BoundTighteningResolvesCheaply) {
  // A chain of coupled rows so the cold solve needs real work; then
  // tighten one variable's box (the branch & bound move) and resolve.
  Rng rng(91);
  const std::size_t n = 12;
  LpProblem p;
  for (std::size_t i = 0; i < n; ++i) p.add_variable(-2.0, 2.0);
  for (std::size_t i = 0; i + 1 < n; ++i)
    p.add_row({{i, 1.0}, {i + 1, rng.uniform(0.3, 1.5)}}, RowSense::kLessEqual,
              rng.uniform(0.5, 2.0));
  std::vector<LinearTerm> objective;
  for (std::size_t i = 0; i < n; ++i) objective.push_back({i, rng.uniform(-1.0, 1.0)});
  p.set_objective(objective, Objective::kMinimize);

  auto revised = backend_for(LpBackendKind::kRevisedBounded);
  revised->load(p);
  const LpSolution cold = revised->solve();
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  const solver::WarmBasis basis = revised->capture_basis();
  ASSERT_FALSE(basis.empty());

  // Tighten: fix variable 3 to its model value rounded toward zero.
  revised->set_bounds(3, 0.0, 0.0);
  const LpSolution warm = revised->resolve(basis);

  // Reference: a fresh cold solve of the tightened problem.
  LpProblem tightened = p;
  tightened.set_bounds(3, 0.0, 0.0);
  auto reference = backend_for(LpBackendKind::kDenseTableau);
  reference->load(tightened);
  const LpSolution ref = reference->solve();

  ASSERT_EQ(warm.status, ref.status);
  if (ref.status == SolveStatus::kOptimal)
    EXPECT_NEAR(warm.objective, ref.objective, kTol);
  EXPECT_EQ(revised->stats().warm_attempts, 1u);
  EXPECT_EQ(revised->stats().warm_hits, 1u);
  // The warm resolve must be much cheaper than solving from scratch.
  EXPECT_LE(warm.iterations, std::max<std::size_t>(cold.iterations, 2));
}

TEST(WarmStart, SolveChildrenMatchesSequentialResolvesOnBothBackends) {
  // The same chained LP as above; branch on variable 3 and compare the
  // batched sibling solve against two manual set_bounds + resolve calls.
  Rng rng(91);
  const std::size_t n = 12;
  LpProblem p;
  for (std::size_t i = 0; i < n; ++i) p.add_variable(-2.0, 2.0);
  for (std::size_t i = 0; i + 1 < n; ++i)
    p.add_row({{i, 1.0}, {i + 1, rng.uniform(0.3, 1.5)}}, RowSense::kLessEqual,
              rng.uniform(0.5, 2.0));
  std::vector<LinearTerm> objective;
  for (std::size_t i = 0; i < n; ++i) objective.push_back({i, rng.uniform(-1.0, 1.0)});
  p.set_objective(objective, Objective::kMinimize);

  for (const LpBackendKind kind :
       {LpBackendKind::kRevisedBounded, LpBackendKind::kDenseTableau}) {
    auto batched = backend_for(kind);
    batched->load(p);
    ASSERT_EQ(batched->solve().status, SolveStatus::kOptimal);
    const solver::WarmBasis parent = batched->capture_basis();

    const solver::ChildBounds children[2] = {{3, 0.0, 0.0}, {3, 1.0, 1.0}};
    solver::ChildResult results[2];
    batched->solve_children(parent, children, 2, results);
    EXPECT_EQ(batched->stats().sibling_batches, 1u);

    auto manual = backend_for(kind);
    manual->load(p);
    ASSERT_EQ(manual->solve().status, SolveStatus::kOptimal);
    const solver::WarmBasis manual_parent = manual->capture_basis();
    for (int c = 0; c < 2; ++c) {
      manual->set_bounds(children[c].var, children[c].lo, children[c].up);
      const LpSolution ref = manual->resolve(manual_parent);
      ASSERT_EQ(results[c].solution.status, ref.status)
          << solver::lp_backend_kind_name(kind) << " child " << c;
      if (ref.status == SolveStatus::kOptimal) {
        EXPECT_NEAR(results[c].solution.objective, ref.objective, kTol)
            << solver::lp_backend_kind_name(kind) << " child " << c;
        // A warm-capable backend must hand back a usable child basis.
        if (batched->supports_warm_start())
          EXPECT_FALSE(results[c].basis.empty());
      }
    }
  }
}

TEST(WarmStart, StaleBasisFallsBackToColdSolve) {
  LpProblem p;
  p.add_variable(0.0, 1.0);
  p.add_row({{0, 1.0}}, RowSense::kLessEqual, 0.5);
  auto revised = backend_for(LpBackendKind::kRevisedBounded);
  revised->load(p);
  solver::WarmBasis wrong;
  wrong.basic = {5};             // out of range for this problem
  wrong.at_upper = {0, 0, 0, 0};
  const LpSolution s = revised->resolve(wrong);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(revised->stats().warm_attempts, 1u);
  EXPECT_EQ(revised->stats().warm_hits, 0u);
}

TEST(WarmStart, DenseBackendNeverClaimsHits) {
  LpProblem p;
  p.add_variable(0.0, 1.0);
  auto dense = backend_for(LpBackendKind::kDenseTableau);
  dense->load(p);
  EXPECT_FALSE(dense->supports_warm_start());
  EXPECT_TRUE(dense->capture_basis().empty());
  solver::WarmBasis basis;
  basis.basic = {0};
  basis.at_upper = {0};
  const LpSolution s = dense->resolve(basis);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(dense->stats().warm_hits, 0u);
}

// ---------------------------------------------------------------- MILP

milp::MilpResult solve_milp(const milp::MilpProblem& p, LpBackendKind kind,
                            std::size_t threads = 1,
                            bool stop_at_first_feasible = false) {
  milp::BranchAndBoundOptions options;
  options.backend = kind;
  options.threads = threads;
  options.stop_at_first_feasible = stop_at_first_feasible;
  return milp::BranchAndBoundSolver(options).solve(p);
}

/// Random small MILPs: both backends (and 1 vs 4 threads) must agree
/// with brute-force enumeration.
class MilpBackendSweep : public ::testing::TestWithParam<int> {};

TEST_P(MilpBackendSweep, BackendsAndThreadCountsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const std::size_t n_bin = static_cast<std::size_t>(rng.uniform_int(2, 5));
  const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 4));

  milp::MilpProblem p;
  std::vector<std::size_t> bins;
  for (std::size_t i = 0; i < n_bin; ++i)
    bins.push_back(p.add_variable(milp::VarType::kBinary, 0.0, 1.0));
  std::vector<std::vector<double>> coeffs(n_rows, std::vector<double>(n_bin));
  std::vector<double> rhs(n_rows);
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<LinearTerm> terms;
    for (std::size_t c = 0; c < n_bin; ++c) {
      coeffs[r][c] = rng.uniform(-3.0, 3.0);
      terms.push_back({bins[c], coeffs[r][c]});
    }
    rhs[r] = rng.uniform(-2.0, 4.0);
    p.add_row(terms, RowSense::kLessEqual, rhs[r]);
  }
  std::vector<double> obj(n_bin);
  std::vector<LinearTerm> obj_terms;
  for (std::size_t c = 0; c < n_bin; ++c) {
    obj[c] = rng.uniform(-2.0, 2.0);
    obj_terms.push_back({bins[c], obj[c]});
  }
  p.set_objective(obj_terms, Objective::kMaximize);

  double best = -1e100;
  bool any = false;
  for (std::size_t mask = 0; mask < (1u << n_bin); ++mask) {
    bool feasible = true;
    for (std::size_t r = 0; r < n_rows && feasible; ++r) {
      double act = 0.0;
      for (std::size_t c = 0; c < n_bin; ++c)
        if (mask & (1u << c)) act += coeffs[r][c];
      feasible = act <= rhs[r] + 1e-9;
    }
    if (!feasible) continue;
    any = true;
    double value = 0.0;
    for (std::size_t c = 0; c < n_bin; ++c)
      if (mask & (1u << c)) value += obj[c];
    best = std::max(best, value);
  }

  for (const LpBackendKind kind :
       {LpBackendKind::kDenseTableau, LpBackendKind::kRevisedBounded}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const milp::MilpResult r = solve_milp(p, kind, threads);
      if (!any) {
        EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible)
            << "seed " << GetParam() << " backend " << solver::lp_backend_kind_name(kind)
            << " threads " << threads;
      } else {
        ASSERT_EQ(r.status, milp::MilpStatus::kOptimal)
            << "seed " << GetParam() << " backend " << solver::lp_backend_kind_name(kind)
            << " threads " << threads;
        EXPECT_NEAR(r.objective, best, kTol)
            << "seed " << GetParam() << " backend " << solver::lp_backend_kind_name(kind)
            << " threads " << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMilps, MilpBackendSweep, ::testing::Range(0, 25));

TEST(MilpWarmStart, RevisedBackendReusesParentBases) {
  // An integrally-infeasible instance that forces a full tree search, so
  // the warm-start machinery gets real traffic.
  milp::MilpProblem p;
  std::vector<LinearTerm> parity;
  for (int i = 0; i < 8; ++i)
    parity.push_back({p.add_variable(milp::VarType::kBinary, 0.0, 1.0), 1.0});
  p.add_row(parity, RowSense::kEqual, 3.5);
  const milp::MilpResult r = solve_milp(p, LpBackendKind::kRevisedBounded);
  EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible);
  EXPECT_GT(r.solver_stats.warm_attempts, 0u);
  EXPECT_GT(r.solver_stats.warm_hits, 0u);
  EXPECT_GE(r.solver_stats.warm_hit_rate(), 0.9);
}

TEST(MilpWarmStart, RevisedBackendNeedsFarFewerLpIterations) {
  // Same search tree on both backends (identical branching rule); the
  // warm-started revised backend must spend far fewer simplex pivots.
  Rng rng(7);
  milp::MilpProblem p;
  std::vector<std::size_t> bins;
  for (int i = 0; i < 10; ++i)
    bins.push_back(p.add_variable(milp::VarType::kBinary, 0.0, 1.0));
  std::vector<LinearTerm> sum;
  for (const std::size_t b : bins) sum.push_back({b, 1.0});
  p.add_row(sum, RowSense::kEqual, 4.5);  // integrally infeasible
  for (int r = 0; r < 4; ++r) {
    std::vector<LinearTerm> terms;
    for (const std::size_t b : bins) terms.push_back({b, rng.uniform(-1.0, 1.0)});
    p.add_row(terms, RowSense::kLessEqual, rng.uniform(1.0, 3.0));
  }
  const milp::MilpResult dense = solve_milp(p, LpBackendKind::kDenseTableau);
  const milp::MilpResult revised = solve_milp(p, LpBackendKind::kRevisedBounded);
  EXPECT_EQ(dense.status, milp::MilpStatus::kInfeasible);
  EXPECT_EQ(revised.status, milp::MilpStatus::kInfeasible);
  ASSERT_GT(dense.lp_iterations, 0u);
  EXPECT_LE(revised.lp_iterations * 2, dense.lp_iterations)
      << "revised " << revised.lp_iterations << " vs dense " << dense.lp_iterations;
}

TEST(ParallelBnb, FeasibilityModeStopsEarlyOnAllThreadCounts) {
  milp::MilpProblem p;
  std::vector<std::size_t> vars;
  for (int i = 0; i < 8; ++i)
    vars.push_back(p.add_variable(milp::VarType::kBinary, 0.0, 1.0));
  std::vector<LinearTerm> sum;
  for (const std::size_t v : vars) sum.push_back({v, 1.0});
  p.add_row(sum, RowSense::kEqual, 4.0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const milp::MilpResult r =
        solve_milp(p, LpBackendKind::kRevisedBounded, threads, true);
    ASSERT_EQ(r.status, milp::MilpStatus::kFeasible) << "threads " << threads;
    double total = 0.0;
    for (const std::size_t v : vars) {
      EXPECT_NEAR(r.values[v], std::round(r.values[v]), 1e-6);
      total += r.values[v];
    }
    EXPECT_NEAR(total, 4.0, kTol) << "threads " << threads;
  }
}

// ------------------------------------------------------------- verifier

TEST(VerifierPlumbing, LpIterationLimitSurfacesAsExplainedUnknown) {
  // Starve the LP (not the node budget): the verdict must be UNKNOWN
  // with an explanatory note, not silently folded into node accounting.
  Rng rng(21);
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(6, 6);
  dense->init_he(rng);
  net.add(std::move(dense));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto out = std::make_unique<nn::Dense>(6, 2);
  out->init_he(rng);
  net.add(std::move(out));

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(6, -1.0, 1.0);
  q.risk.output_at_least(0, 2, 1e6);  // unreachable: forces a proof search

  verify::TailVerifierOptions options;
  options.milp.lp_options.max_iterations = 1;  // starve every relaxation
  options.encode.lp_options.max_iterations = 1;
  // Keep the feasibility objective: the risk-margin objective lets the
  // dual simplex prove this root infeasible in zero iterations, which
  // is sound but defeats the starvation this test is about.
  options.risk_margin_objective = false;
  const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
  EXPECT_EQ(r.verdict, verify::Verdict::kUnknown);
  EXPECT_NE(r.summary().find("LP iteration limit"), std::string::npos) << r.summary();
}

TEST(VerifierPlumbing, SummaryNamesBackendAndWarmRate) {
  Rng rng(33);
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(4, 4);
  dense->init_he(rng);
  net.add(std::move(dense));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto out = std::make_unique<nn::Dense>(4, 2);
  out->init_he(rng);
  net.add(std::move(out));

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(4, -1.0, 1.0);
  q.risk.output_at_least(0, 2, 1e6);

  const verify::VerificationResult r =
      verify::TailVerifier(verify::TailVerifierOptions{}).verify(q);
  EXPECT_NE(r.summary().find("backend=revised-bounded"), std::string::npos)
      << r.summary();
}

// ------------------------------------------------------------- campaign

train::Dataset labelled_cloud(Rng& rng, std::size_t count) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({x0 > 0.0 ? 1.0 : 0.0}));
  }
  return data;
}

nn::Network make_small_net(Rng& rng) {
  nn::Network net;
  auto dense = std::make_unique<nn::Dense>(2, 4);
  dense->init_he(rng);
  net.add(std::move(dense));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto readout = std::make_unique<nn::Dense>(4, 2);
  readout->init_he(rng);
  net.add(std::move(readout));
  return net;
}

std::vector<core::CampaignEntry> make_entries(Rng& rng) {
  std::vector<core::CampaignEntry> entries;
  verify::RiskSpec unreachable("far-out");
  unreachable.output_at_least(0, 2, 1e6);
  verify::RiskSpec reachable("reachable");
  reachable.output_at_most(0, 2, 1e6);
  for (int i = 0; i < 3; ++i)
    entries.push_back({"x0-positive-" + std::to_string(i), labelled_cloud(rng, 60),
                       labelled_cloud(rng, 30), i % 2 == 0 ? unreachable : reachable});
  return entries;
}

/// Blanks the legitimately run-dependent report fields (wall times).
std::string strip_timings(std::string text) {
  const std::regex timing("(encode=|solve=|, )[0-9.e+-]+s");
  return std::regex_replace(text, timing, "$1<t>s");
}

TEST(ParallelCampaign, ReportsAreBitIdenticalAcrossThreadCounts) {
  Rng rng(101);
  const nn::Network net = make_small_net(rng);
  const std::vector<core::CampaignEntry> entries = make_entries(rng);

  core::WorkflowConfig config;
  config.characterizer.trainer.epochs = 20;

  std::vector<std::string> tables;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    config.campaign_threads = threads;
    const core::CampaignReport report = core::run_campaign(net, 2, entries, config);
    std::string all = report.format_table();
    for (const core::WorkflowReport& wr : report.reports) all += "\n" + wr.to_string();
    tables.push_back(strip_timings(std::move(all)));
  }
  EXPECT_EQ(tables[0], tables[1]);
  EXPECT_EQ(tables[0], tables[2]);
}

TEST(ParallelCampaign, PerEntryNodeBudgetApplies) {
  Rng rng(103);
  const nn::Network net = make_small_net(rng);
  const std::vector<core::CampaignEntry> entries = make_entries(rng);

  core::WorkflowConfig config;
  config.characterizer.trainer.epochs = 20;
  config.entry_node_budget = 1;  // starve every entry's MILP search
  const core::CampaignReport report = core::run_campaign(net, 2, entries, config);
  for (const core::WorkflowReport& wr : report.reports)
    EXPECT_LE(wr.safety.verification.milp_nodes, 1u) << wr.property_name;
}

}  // namespace
}  // namespace dpv
