// Checkpoint/resume tests: file-format round trips (doubles must survive
// bit-exactly), the campaign deadline-honesty grid, kill-and-resume
// bit-identity for both deadline cuts and injected faults, and the
// coverage engine's round-boundary resume. The contract under test: a
// resumed run reproduces the uninterrupted run's tables bit for bit,
// wherever the interruption landed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "common/run_control.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/coverage.hpp"
#include "core/parallel_pass.hpp"
#include "data/dataset_gen.hpp"
#include "data/perception_model.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace dpv::core {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool tensor_bits_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  for (std::size_t i = 0; i < a.numel(); ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}

// ---------------------------------------------------------------------
// File format primitives.

TEST(CheckpointFile, CampaignRecordsRoundTripBitExactly) {
  // Doubles chosen to break decimal round-trips: a denormal, signed
  // zero, the largest finite value, and non-terminating fractions.
  const std::vector<double> tricky = {5e-324, -0.0, 1.7976931348623157e308,
                                      1.0 / 3.0, -1e-200, 0.1};
  CampaignCheckpoint ckpt;
  ckpt.fingerprint = 0xfeedface12345678ULL;
  ckpt.config_hash = 0x0123456789abcdefULL;
  ckpt.entry_count = 7;
  CampaignEntryRecord rec;
  rec.index = 3;
  rec.property_name = "property with spaces:and,separators";
  rec.risk_name = "risk name\twith tab";
  rec.train_confusion.tp = 12;
  rec.train_confusion.fp = 3;
  rec.train_confusion.fn = 4;
  rec.train_confusion.tn = 181;
  rec.validation_confusion.tp = 40;
  rec.validation_confusion.tn = 55;
  rec.characterizer_usable = true;
  rec.safety_verdict = SafetyVerdict::kSafeConditional;
  rec.pipeline_ran = true;
  rec.table_one.tp = 9;
  rec.table_one.fn = 1;
  rec.verdict = verify::Verdict::kUnsafe;
  rec.decided_by = verify::DecisionStage::kAttack;
  rec.milp_nodes = 77;
  rec.hit_node_limit = true;
  rec.counterexample_validated = true;
  rec.counterexample_activation = Tensor::vector1d(tricky);
  rec.have_frontier_activation = true;
  rec.frontier_activation = Tensor::vector1d({-1.0 / 7.0, 2.2250738585072014e-308});
  ckpt.records.push_back(rec);
  // A settled entry with no counterexample: both tensors are the default
  // "none" (numel 0 under a rank-0 shape) — the case a dim-product
  // round-trip would silently corrupt into a one-element scalar.
  CampaignEntryRecord bare;
  bare.index = 5;
  bare.property_name = "clean";
  bare.risk_name = "far-out";
  ckpt.records.push_back(bare);

  const std::string path = temp_path("ckpt_roundtrip_campaign");
  save_campaign_checkpoint(path, ckpt);
  CampaignCheckpoint loaded;
  ASSERT_TRUE(load_campaign_checkpoint(path, loaded));
  EXPECT_EQ(loaded.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(loaded.config_hash, ckpt.config_hash);
  EXPECT_EQ(loaded.entry_count, 7u);
  ASSERT_EQ(loaded.records.size(), 2u);
  const CampaignEntryRecord& r = loaded.records[0];
  EXPECT_EQ(r.index, 3u);
  EXPECT_EQ(r.property_name, rec.property_name);
  EXPECT_EQ(r.risk_name, rec.risk_name);
  EXPECT_EQ(r.train_confusion.tp, 12u);
  EXPECT_EQ(r.train_confusion.tn, 181u);
  EXPECT_EQ(r.validation_confusion.tp, 40u);
  EXPECT_TRUE(r.characterizer_usable);
  EXPECT_EQ(r.safety_verdict, SafetyVerdict::kSafeConditional);
  EXPECT_TRUE(r.pipeline_ran);
  EXPECT_EQ(r.table_one.tp, 9u);
  EXPECT_EQ(r.verdict, verify::Verdict::kUnsafe);
  EXPECT_EQ(r.decided_by, verify::DecisionStage::kAttack);
  EXPECT_EQ(r.milp_nodes, 77u);
  EXPECT_TRUE(r.hit_node_limit);
  EXPECT_TRUE(r.counterexample_validated);
  EXPECT_TRUE(tensor_bits_equal(r.counterexample_activation, rec.counterexample_activation));
  EXPECT_TRUE(r.have_frontier_activation);
  EXPECT_TRUE(tensor_bits_equal(r.frontier_activation, rec.frontier_activation));
  const CampaignEntryRecord& clean = loaded.records[1];
  EXPECT_EQ(clean.property_name, "clean");
  EXPECT_EQ(clean.counterexample_activation.numel(), 0u);
  EXPECT_EQ(clean.frontier_activation.numel(), 0u);
}

TEST(CheckpointFile, CoverageRecordsRoundTripBitExactly) {
  CoverageCheckpoint ckpt;
  ckpt.fingerprint = 42;
  ckpt.config_hash = 43;
  CoverageRound round;
  round.round = 1;
  round.cells_processed = 4;
  round.cells_certified = 2;
  round.certified_volume_fraction = 1.0 / 3.0;
  round.milp_nodes = 999;
  ckpt.rounds.push_back(round);

  CoverageCellRecord cell;
  cell.id = 0;  // the loader enforces dense id order
  cell.parent = CoverageCell::kNone;
  cell.depth = 2;
  cell.path_hash = 0xdeadbeefcafef00dULL;
  cell.box = data::scenario_domain();
  cell.box.curvature.lo = -0.123456789012345678;
  cell.volume_fraction = 1.0 / 7.0;
  cell.status = CellStatus::kUnsafe;
  cell.verdict = SafetyVerdict::kUnsafe;
  cell.decided_by = "scenario-attack";
  cell.decided_round = 1;
  cell.has_counterexample_scenario = true;
  cell.counterexample_scenario.curvature = -0.7 + 1e-16;
  cell.counterexample_scenario.lane_offset = 5e-324;
  cell.counterexample_scenario.traffic_adjacent = true;
  cell.split_dim = 0;
  cell.children = {7, 8};
  ckpt.cells.push_back(cell);

  PoolPointRecord point;
  point.key = "heading-hard-left@cell:12";
  point.order = 3;
  point.point = Tensor::vector1d({0.25, -0.0, 1e300});
  ckpt.pool.push_back(point);
  ckpt.pool_points_contributed = 9;

  const std::string path = temp_path("ckpt_roundtrip_coverage");
  save_coverage_checkpoint(path, ckpt);
  CoverageCheckpoint loaded;
  ASSERT_TRUE(load_coverage_checkpoint(path, loaded));
  EXPECT_EQ(loaded.fingerprint, 42u);
  ASSERT_EQ(loaded.rounds.size(), 1u);
  EXPECT_EQ(loaded.rounds[0].cells_processed, 4u);
  EXPECT_TRUE(bits_equal(loaded.rounds[0].certified_volume_fraction, 1.0 / 3.0));
  ASSERT_EQ(loaded.cells.size(), 1u);
  const CoverageCellRecord& c = loaded.cells[0];
  EXPECT_EQ(c.id, 0u);
  EXPECT_EQ(c.path_hash, cell.path_hash);
  EXPECT_TRUE(bits_equal(c.box.curvature.lo, cell.box.curvature.lo));
  EXPECT_TRUE(bits_equal(c.volume_fraction, 1.0 / 7.0));
  EXPECT_EQ(c.status, CellStatus::kUnsafe);
  EXPECT_EQ(c.decided_by, "scenario-attack");
  EXPECT_TRUE(c.has_counterexample_scenario);
  EXPECT_TRUE(bits_equal(c.counterexample_scenario.curvature, -0.7 + 1e-16));
  EXPECT_TRUE(bits_equal(c.counterexample_scenario.lane_offset, 5e-324));
  EXPECT_TRUE(c.counterexample_scenario.traffic_adjacent);
  EXPECT_EQ(c.split_dim, 0u);
  EXPECT_EQ(c.children[0], 7u);
  EXPECT_EQ(c.children[1], 8u);
  ASSERT_EQ(loaded.pool.size(), 1u);
  EXPECT_EQ(loaded.pool[0].key, point.key);
  EXPECT_EQ(loaded.pool[0].order, 3u);
  EXPECT_TRUE(tensor_bits_equal(loaded.pool[0].point, point.point));
  EXPECT_EQ(loaded.pool_points_contributed, 9u);
}

TEST(CheckpointFile, MissingMalformedAndWrongKindFiles) {
  CampaignCheckpoint out;
  EXPECT_FALSE(load_campaign_checkpoint(temp_path("ckpt_nonexistent"), out));

  const std::string garbage = temp_path("ckpt_garbage");
  std::ofstream(garbage) << "not a checkpoint at all\n";
  EXPECT_THROW(load_campaign_checkpoint(garbage, out), ContractViolation);

  // A campaign file refuses to load as a coverage checkpoint.
  const std::string wrong_kind = temp_path("ckpt_wrong_kind");
  save_campaign_checkpoint(wrong_kind, CampaignCheckpoint{});
  CoverageCheckpoint cov;
  EXPECT_THROW(load_coverage_checkpoint(wrong_kind, cov), ContractViolation);
}

TEST(CheckpointFile, ConfigHasherSeparatesBitPatterns) {
  ConfigHasher a, b;
  a.add(0.0);
  b.add(-0.0);
  EXPECT_NE(a.hash(), b.hash());  // hashed by bit pattern, not value
  ConfigHasher c, d;
  c.add(std::string("ab"));
  c.add(std::string("c"));
  d.add(std::string("a"));
  d.add(std::string("bc"));
  EXPECT_NE(c.hash(), d.hash());  // length-prefixed, no concatenation alias
}

// ---------------------------------------------------------------------
// Campaign: deadline honesty and kill-and-resume bit-identity.

/// Perception-style net: dense(2->4) relu | tail dense(4->1).
nn::Network make_monitored_net(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

train::Dataset labelled_cloud(Rng& rng, std::size_t count, double threshold) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}),
             Tensor::vector1d({x0 > threshold ? 1.0 : 0.0}));
  }
  return data;
}

WorkflowConfig base_config() {
  WorkflowConfig config;
  config.characterizer.trainer.epochs = 60;
  return config;
}

struct CampaignTestbed {
  nn::Network net;
  std::vector<CampaignEntry> entries;
  std::string reference_table;  ///< uninterrupted, no checkpointing
};

const CampaignTestbed& campaign_testbed() {
  static const CampaignTestbed instance = [] {
    CampaignTestbed tb;
    Rng rng(53);
    tb.net = make_monitored_net(rng);
    verify::RiskSpec unreachable("far-out");
    unreachable.output_at_least(0, 1, 1e6);
    verify::RiskSpec reachable("reachable");
    reachable.output_at_most(0, 1, 1e6);
    verify::RiskSpec unreachable_b("far-out-b");
    unreachable_b.output_at_least(0, 1, 2e6);
    tb.entries.push_back({"x0-positive", labelled_cloud(rng, 200, 0.0),
                          labelled_cloud(rng, 100, 0.0), unreachable});
    tb.entries.push_back({"x0-positive", labelled_cloud(rng, 200, 0.0),
                          labelled_cloud(rng, 100, 0.0), reachable});
    tb.entries.push_back({"x0-positive", labelled_cloud(rng, 200, 0.0),
                          labelled_cloud(rng, 100, 0.0), unreachable_b});
    tb.reference_table =
        run_campaign(tb.net, 2, tb.entries, base_config()).format_table();
    return tb;
  }();
  return instance;
}

TEST(CampaignResume, DeadlineGridIsHonestAndResumesBitIdentically) {
  // Sweep the deadline through the whole battery: wherever it lands, the
  // interrupted report must be an honest partial (deadline-skipped rows
  // tallied as unknown) and a resume must reproduce the uninterrupted
  // table bit for bit. Budgets grow until one run completes untouched.
  const CampaignTestbed& tb = campaign_testbed();
  const std::string path = temp_path("ckpt_campaign_deadline");
  bool saw_interrupt = false;
  bool saw_partial_restore = false;
  bool saw_completion = false;
  for (std::uint64_t budget = 0; budget <= (1u << 20); budget = budget == 0 ? 1 : budget * 2) {
    std::remove(path.c_str());
    RunControl rc;
    rc.set_poll_budget(budget);
    WorkflowConfig cut = base_config();
    cut.run_control = &rc;
    cut.checkpoint_path = path;
    const CampaignReport report = run_campaign(tb.net, 2, tb.entries, cut);
    if (report.interrupted) {
      saw_interrupt = true;
      const std::string table = report.format_table();
      EXPECT_NE(table.find("deadline-skipped"), std::string::npos) << "budget " << budget;
      EXPECT_NE(table.find("run interrupted by deadline"), std::string::npos);
      ASSERT_EQ(report.reports.size(), tb.entries.size());

      WorkflowConfig cont = base_config();
      cont.checkpoint_path = path;
      cont.resume = true;
      const CampaignReport resumed = run_campaign(tb.net, 2, tb.entries, cont);
      EXPECT_FALSE(resumed.interrupted);
      saw_partial_restore |= resumed.resume_entries_restored > 0;
      EXPECT_EQ(resumed.format_table(), tb.reference_table) << "budget " << budget;
    } else {
      saw_completion = true;
      EXPECT_EQ(report.format_table(), tb.reference_table) << "budget " << budget;
      break;  // larger budgets only repeat the full run
    }
  }
  EXPECT_TRUE(saw_interrupt);
  EXPECT_TRUE(saw_completion);
  EXPECT_TRUE(saw_partial_restore);  // some cut landed mid-battery
}

TEST(CampaignResume, ResumeIsThreadCountInvariant) {
  // With a worker pool the deadline lands nondeterministically, but the
  // resumed table must still match the serial uninterrupted reference.
  const CampaignTestbed& tb = campaign_testbed();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string path =
        temp_path("ckpt_campaign_threads_" + std::to_string(threads));
    RunControl rc;
    rc.set_poll_budget(512);
    WorkflowConfig cut = base_config();
    cut.campaign_threads = threads;
    cut.run_control = &rc;
    cut.checkpoint_path = path;
    const CampaignReport report = run_campaign(tb.net, 2, tb.entries, cut);
    if (report.interrupted) {
      WorkflowConfig cont = base_config();
      cont.campaign_threads = threads;
      cont.checkpoint_path = path;
      cont.resume = true;
      const CampaignReport resumed = run_campaign(tb.net, 2, tb.entries, cont);
      EXPECT_EQ(resumed.format_table(), tb.reference_table) << threads << " threads";
    } else {
      EXPECT_EQ(report.format_table(), tb.reference_table) << threads << " threads";
    }
  }
}

TEST(CampaignResume, InjectedFaultSalvagesSettledWorkForResume) {
  // A worker that dies mid-battery aborts the campaign with an exception
  // — but the entries already settled are salvaged into the checkpoint
  // on the way out, and a resume completes the battery bit-identically.
  const CampaignTestbed& tb = campaign_testbed();
  const std::string path = temp_path("ckpt_campaign_fault");
  fault::disarm_all();
  fault::arm("core.worker_throw", 2);  // entry 0 settles, entry 1 dies
  WorkflowConfig cut = base_config();
  cut.checkpoint_path = path;
  EXPECT_THROW(run_campaign(tb.net, 2, tb.entries, cut), ParallelPassError);
  fault::disarm_all();

  WorkflowConfig cont = base_config();
  cont.checkpoint_path = path;
  cont.resume = true;
  const CampaignReport resumed = run_campaign(tb.net, 2, tb.entries, cont);
  EXPECT_EQ(resumed.resume_entries_restored, 1u);
  EXPECT_EQ(resumed.format_table(), tb.reference_table);
}

TEST(CampaignResume, CompletedCheckpointResumesAsANoOp) {
  const CampaignTestbed& tb = campaign_testbed();
  const std::string path = temp_path("ckpt_campaign_complete");
  WorkflowConfig with_ckpt = base_config();
  with_ckpt.checkpoint_path = path;
  const CampaignReport full = run_campaign(tb.net, 2, tb.entries, with_ckpt);
  ASSERT_FALSE(full.interrupted);

  WorkflowConfig cont = base_config();
  cont.checkpoint_path = path;
  cont.resume = true;
  const CampaignReport resumed = run_campaign(tb.net, 2, tb.entries, cont);
  EXPECT_EQ(resumed.resume_entries_restored, tb.entries.size());
  EXPECT_EQ(resumed.format_table(), tb.reference_table);
}

TEST(CampaignResume, MismatchedConfigOrNetworkThrows) {
  const CampaignTestbed& tb = campaign_testbed();
  const std::string path = temp_path("ckpt_campaign_mismatch");
  // Cheap interrupted run to produce a checkpoint: budget 0 skips all.
  RunControl rc;
  rc.set_poll_budget(0);
  WorkflowConfig cut = base_config();
  cut.run_control = &rc;
  cut.checkpoint_path = path;
  ASSERT_TRUE(run_campaign(tb.net, 2, tb.entries, cut).interrupted);

  // A semantics-affecting option changed: the checkpoint is not ours.
  WorkflowConfig other = base_config();
  other.checkpoint_path = path;
  other.resume = true;
  other.entry_node_budget = 12345;
  EXPECT_THROW(run_campaign(tb.net, 2, tb.entries, other), ContractViolation);

  // A different network: fingerprint mismatch.
  Rng rng(99);
  const nn::Network other_net = make_monitored_net(rng);
  WorkflowConfig cont = base_config();
  cont.checkpoint_path = path;
  cont.resume = true;
  EXPECT_THROW(run_campaign(other_net, 2, tb.entries, cont), ContractViolation);
}

TEST(CampaignResume, ResumeWithoutACheckpointRunsFresh) {
  const CampaignTestbed& tb = campaign_testbed();
  WorkflowConfig cont = base_config();
  cont.checkpoint_path = temp_path("ckpt_campaign_missing");
  cont.resume = true;
  const CampaignReport report = run_campaign(tb.net, 2, tb.entries, cont);
  EXPECT_EQ(report.resume_entries_restored, 0u);
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.format_table(), tb.reference_table);
}

// ---------------------------------------------------------------------
// Coverage: round-boundary resume over a trained perception model.

struct ResumeCoverageTestbed {
  data::PerceptionModel model;
  verify::RiskSpec risk;
  std::string reference_table;
  std::string reference_map;
};

CoverageOptions coverage_options(const data::PerceptionConfig& pconfig) {
  CoverageOptions options;
  options.render = pconfig.render;
  options.samples_per_cell = 10;
  options.seed = 99;
  options.max_rounds = 3;
  options.max_depth = 4;
  options.threads = 1;
  options.cell_node_budget = 600;
  options.verifier.falsify.restarts = 2;
  options.verifier.falsify.steps = 25;
  return options;
}

OperationalDomain coverage_domain() {
  OperationalDomain domain;
  domain.initial_grid = {4, 1, 1, 1};
  return domain;
}

const ResumeCoverageTestbed& coverage_testbed() {
  static const ResumeCoverageTestbed instance = [] {
    ResumeCoverageTestbed tb;
    data::PerceptionConfig pconfig;
    pconfig.render.width = 16;
    pconfig.render.height = 8;
    pconfig.conv1_channels = 2;
    pconfig.conv2_channels = 4;
    pconfig.embedding = 12;
    pconfig.features = 8;
    pconfig.tail_hidden = 8;
    pconfig.batchnorm_tail = false;
    Rng rng(7);
    tb.model = data::make_perception_network(pconfig, rng);

    data::RoadDatasetConfig data_cfg{400, 17, pconfig.render};
    const std::vector<data::RoadSample> samples = data::generate_road_samples(data_cfg);
    train::MseLoss loss;
    train::Adam optimizer(0.005);
    train::Trainer trainer({.epochs = 25, .batch_size = 32, .shuffle_seed = 3});
    trainer.fit(tb.model.network, data::to_regression_dataset(samples), loss, optimizer);

    tb.risk = verify::RiskSpec("heading-hard-left");
    tb.risk.output_at_most(1, 2, -0.35);

    const CoverageReport reference =
        run_coverage(tb.model.network, tb.model.attach_layer, tb.risk, coverage_domain(),
                     coverage_options(tb.model.config));
    tb.reference_table = reference.format_table();
    tb.reference_map = reference.map.format_map();
    return tb;
  }();
  return instance;
}

TEST(CoverageResume, DeadlineCutResumesToTheIdenticalMap) {
  // Sweep the deadline across the run. Every interrupted run must resume
  // to the uninterrupted table AND refinement tree, bit for bit — the
  // round-start checkpoint plus deterministic split replay guarantee it.
  const ResumeCoverageTestbed& tb = coverage_testbed();
  const std::string path = temp_path("ckpt_coverage_deadline");
  bool saw_interrupt = false;
  bool saw_completion = false;
  for (std::uint64_t budget = 0; budget <= (1u << 22);
       budget = budget == 0 ? 256 : budget * 4) {
    std::remove(path.c_str());
    RunControl rc;
    rc.set_poll_budget(budget);
    CoverageOptions cut = coverage_options(tb.model.config);
    cut.run_control = &rc;
    cut.checkpoint_path = path;
    const CoverageReport report = run_coverage(tb.model.network, tb.model.attach_layer,
                                               tb.risk, coverage_domain(), cut);
    if (report.interrupted) {
      saw_interrupt = true;
      EXPECT_NE(report.format_table().find("run interrupted by deadline"),
                std::string::npos)
          << "budget " << budget;

      CoverageOptions cont = coverage_options(tb.model.config);
      cont.checkpoint_path = path;
      cont.resume = true;
      const CoverageReport resumed = run_coverage(
          tb.model.network, tb.model.attach_layer, tb.risk, coverage_domain(), cont);
      EXPECT_FALSE(resumed.interrupted);
      EXPECT_EQ(resumed.format_table(), tb.reference_table) << "budget " << budget;
      EXPECT_EQ(resumed.map.format_map(), tb.reference_map) << "budget " << budget;
    } else {
      saw_completion = true;
      EXPECT_EQ(report.format_table(), tb.reference_table) << "budget " << budget;
      break;
    }
  }
  EXPECT_TRUE(saw_interrupt);
  EXPECT_TRUE(saw_completion);
}

TEST(CoverageResume, CompletedCheckpointRestoresEveryRound) {
  // A completed run's final checkpoint makes resume a pure restore: the
  // whole refinement tree is replayed from records and the tables match
  // without a single verification query.
  const ResumeCoverageTestbed& tb = coverage_testbed();
  const std::string path = temp_path("ckpt_coverage_complete");
  CoverageOptions with_ckpt = coverage_options(tb.model.config);
  with_ckpt.checkpoint_path = path;
  const CoverageReport full = run_coverage(tb.model.network, tb.model.attach_layer,
                                           tb.risk, coverage_domain(), with_ckpt);
  ASSERT_FALSE(full.interrupted);
  EXPECT_EQ(full.format_table(), tb.reference_table);

  CoverageOptions cont = coverage_options(tb.model.config);
  cont.checkpoint_path = path;
  cont.resume = true;
  const CoverageReport resumed = run_coverage(tb.model.network, tb.model.attach_layer,
                                              tb.risk, coverage_domain(), cont);
  EXPECT_EQ(resumed.resume_rounds_restored, full.rounds.size());
  EXPECT_EQ(resumed.format_table(), tb.reference_table);
  EXPECT_EQ(resumed.map.format_map(), tb.reference_map);
}

TEST(CoverageResume, MismatchedConfigThrows) {
  const ResumeCoverageTestbed& tb = coverage_testbed();
  const std::string path = temp_path("ckpt_coverage_mismatch");
  RunControl rc;
  rc.set_poll_budget(0);
  CoverageOptions cut = coverage_options(tb.model.config);
  cut.run_control = &rc;
  cut.checkpoint_path = path;
  ASSERT_TRUE(run_coverage(tb.model.network, tb.model.attach_layer, tb.risk,
                           coverage_domain(), cut)
                  .interrupted);

  CoverageOptions other = coverage_options(tb.model.config);
  other.checkpoint_path = path;
  other.resume = true;
  other.seed = 12345;  // semantics-affecting: different sample draws
  EXPECT_THROW(run_coverage(tb.model.network, tb.model.attach_layer, tb.risk,
                            coverage_domain(), other),
               ContractViolation);
}

}  // namespace
}  // namespace dpv::core
