// Staged falsify-then-prove pipeline tests: witness soundness (an
// attack-reported UNSAFE must re-validate on a real forward pass, and a
// spurious seed point must never flip a verdict), the zonotope SAFE
// stage, deterministic seeding, counterexample recycling, and the
// campaign-level verdict-compatibility grid (falsify on/off x thread
// counts).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "core/counterexample_pool.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/falsifier.hpp"
#include "verify/verifier.hpp"

namespace dpv::verify {
namespace {

using absint::Interval;

/// network computing out = [n1 - n0] from two inputs (identity tail).
nn::Network make_difference_net() {
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(2, 1);
  d->set_parameters(Tensor(Shape{1, 2}, {-1.0, 1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d));
  return net;
}

/// dense(2->6) relu dense(6->1) with deterministic weights.
nn::Network make_relu_net(std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 6);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto d2 = std::make_unique<nn::Dense>(6, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

VerificationQuery make_query(const nn::Network& net, absint::Box box, RiskSpec risk) {
  VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = std::move(box);
  q.risk = std::move(risk);
  return q;
}

FalsifyOptions enabled_options() {
  FalsifyOptions options;
  options.enabled = true;
  return options;
}

TEST(ValidateWitness, ChecksEveryConstraintOnARealForwardPass) {
  const nn::Network net = make_difference_net();
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.5);
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  q.diff_bounds = {Interval(-2.0, 0.9)};

  // (0, 0.8): in box, diff 0.8 within bounds, out = 0.8 >= 0.5.
  EXPECT_TRUE(validate_witness(q, Tensor::vector1d({0.0, 0.8}), 1e-9));
  // Out of box.
  EXPECT_FALSE(validate_witness(q, Tensor::vector1d({-0.5, 0.8}), 1e-9));
  // Diff bound violated (diff = 0.95 > 0.9).
  EXPECT_FALSE(validate_witness(q, Tensor::vector1d({0.0, 0.95}), 1e-9));
  // Risk margin violated (out = 0.2 < 0.5).
  EXPECT_FALSE(validate_witness(q, Tensor::vector1d({0.3, 0.5}), 1e-9));
  // Wrong dimension.
  EXPECT_FALSE(validate_witness(q, Tensor::vector1d({0.5}), 1e-9));

  // Pair constraints are enforced too.
  VerificationQuery qp = make_query(net, absint::uniform_box(2, 0.0, 1.0), q.risk);
  qp.pair_bounds.push_back({0, 1, Interval(-0.1, 0.1)});
  EXPECT_FALSE(validate_witness(qp, Tensor::vector1d({0.0, 0.8}), 1e-9));
}

TEST(Falsifier, AttackSettlesReachableRiskWithValidatedWitness) {
  const nn::Network net = make_difference_net();
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.9);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);

  const FalsifyReport report = falsify_query(q, enabled_options());
  ASSERT_TRUE(report.falsified);
  // Soundness: the witness re-validates on a real forward pass, with no
  // tolerance borrowed from the attack.
  EXPECT_TRUE(validate_witness(q, report.counterexample_activation, 0.0));
  const Tensor y = net.forward(report.counterexample_activation);
  EXPECT_GE(y[0], 0.9);
}

TEST(Falsifier, AttackRespectsRelationalConstraints) {
  // diff bound [-0.5, 0.5] still admits out = n1 - n0 >= 0.3; the
  // witness must satisfy both the risk and the relational hinge.
  const nn::Network net = make_difference_net();
  RiskSpec risk("within-diff");
  risk.output_at_least(0, 1, 0.3);
  VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);
  q.diff_bounds = {Interval(-0.5, 0.5)};

  const FalsifyReport report = falsify_query(q, enabled_options());
  ASSERT_TRUE(report.falsified);
  const double diff =
      report.counterexample_activation[1] - report.counterexample_activation[0];
  EXPECT_GE(diff, 0.3);
  EXPECT_LE(diff, 0.5 + 1e-12);
}

TEST(Falsifier, SpuriousSeedPointsNeverFlipAVerdict) {
  // Risk out >= 1.5 is unreachable over [0,1]^2 (out ranges [-1,1]).
  // Poison the seed pool with stale points — out-of-box, wrong-sized,
  // and in-box near-misses. None may produce UNSAFE.
  const nn::Network net = make_difference_net();
  RiskSpec risk("impossible");
  risk.output_at_least(0, 1, 1.5);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);

  FalsifyOptions options = enabled_options();
  options.seed_points = {Tensor::vector1d({-7.0, 9.0}), Tensor::vector1d({0.5}),
                         Tensor::vector1d({0.0, 1.0}), Tensor::vector1d({0.2, 0.9})};
  const FalsifyReport report = falsify_query(q, options);
  EXPECT_FALSE(report.falsified);

  // Through the verifier the query still proves SAFE.
  TailVerifierOptions vo;
  vo.falsify = options;
  const VerificationResult r = TailVerifier(vo).verify(q);
  EXPECT_EQ(r.verdict, Verdict::kSafe);
}

TEST(Falsifier, RecycledWitnessSettlesOnTheFirstSeed) {
  const nn::Network net = make_difference_net();
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.9);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);

  const FalsifyReport first = falsify_query(q, enabled_options());
  ASSERT_TRUE(first.falsified);

  FalsifyOptions recycled = enabled_options();
  recycled.seed_points = {first.counterexample_activation};
  const FalsifyReport second = falsify_query(q, recycled);
  ASSERT_TRUE(second.falsified);
  EXPECT_EQ(second.seeds_tried, 1u);
  EXPECT_EQ(second.starts, 1u);  // the seed validated immediately
}

TEST(Falsifier, SeedingIsDeterministic) {
  const nn::Network net = make_relu_net(11);
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.01);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, -1.0, 1.0), risk);

  FalsifyOptions options = enabled_options();
  options.seed = 1234;
  const FalsifyReport a = falsify_query(q, options);
  const FalsifyReport b = falsify_query(q, options);
  EXPECT_EQ(a.falsified, b.falsified);
  EXPECT_EQ(a.starts, b.starts);
  if (a.falsified) {
    ASSERT_EQ(a.counterexample_activation.numel(), b.counterexample_activation.numel());
    for (std::size_t i = 0; i < a.counterexample_activation.numel(); ++i)
      EXPECT_EQ(a.counterexample_activation[i], b.counterexample_activation[i]);
  }
}

TEST(Falsifier, ConcurrentAttacksOnASharedNetworkMatchSerial) {
  const nn::Network net = make_relu_net(13);
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.01);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, -1.0, 1.0), risk);
  const FalsifyReport serial = falsify_query(q, enabled_options());

  std::vector<FalsifyReport> reports(4);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < reports.size(); ++t)
    pool.emplace_back([&, t] { reports[t] = falsify_query(q, enabled_options()); });
  for (std::thread& t : pool) t.join();
  for (const FalsifyReport& r : reports) {
    EXPECT_EQ(r.falsified, serial.falsified);
    EXPECT_EQ(r.starts, serial.starts);
    if (serial.falsified)
      for (std::size_t i = 0; i < serial.counterexample_activation.numel(); ++i)
        EXPECT_EQ(r.counterexample_activation[i], serial.counterexample_activation[i]);
  }
}

TEST(BoundProof, ZonotopeStageProvesUnreachableRiskWithoutMilp) {
  const nn::Network net = make_relu_net(17);
  RiskSpec risk("impossible");
  risk.output_at_least(0, 1, 1e6);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, -1.0, 1.0), risk);

  const BoundProofReport proof = prove_by_bounds(q, enabled_options());
  EXPECT_TRUE(proof.proved_safe);
  EXPECT_TRUE(proof.used_zonotope);

  TailVerifierOptions vo;
  vo.falsify = enabled_options();
  const VerificationResult r = TailVerifier(vo).verify(q);
  EXPECT_EQ(r.verdict, Verdict::kSafe);
  EXPECT_EQ(r.decided_by, DecisionStage::kZonotope);
  EXPECT_EQ(r.milp_nodes, 0u);  // never encoded, never searched
  EXPECT_GT(r.zonotope_seconds, 0.0);
  EXPECT_NE(r.summary().find("[zonotope]"), std::string::npos);
}

TEST(BoundProof, NeverProvesSafeOnAReachableRisk) {
  // Soundness in the other direction: a risk reached inside the box must
  // survive the bound stage (over-approximation can only widen ranges).
  const nn::Network net = make_relu_net(19);
  const absint::Box box = absint::uniform_box(2, -1.0, 1.0);
  double hi = -1e100;
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const Tensor x =
        Tensor::vector1d({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
    hi = std::max(hi, net.forward(x)[0]);
  }
  RiskSpec risk("reached");
  risk.output_at_least(0, 1, hi - 0.01);
  const BoundProofReport proof = prove_by_bounds(make_query(net, box, risk), enabled_options());
  EXPECT_FALSE(proof.proved_safe);
}

TEST(Verifier, AttackDecisionCarriesValidatedCounterexample) {
  const nn::Network net = make_difference_net();
  RiskSpec risk("reachable");
  risk.output_at_least(0, 1, 0.9);
  const VerificationQuery q = make_query(net, absint::uniform_box(2, 0.0, 1.0), risk);

  TailVerifierOptions vo;
  vo.falsify = enabled_options();
  const VerificationResult r = TailVerifier(vo).verify(q);
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  EXPECT_EQ(r.decided_by, DecisionStage::kAttack);
  EXPECT_TRUE(r.counterexample_validated);
  EXPECT_GE(net.forward(r.counterexample_activation)[0], 0.9);
  EXPECT_EQ(r.milp_nodes, 0u);
  EXPECT_GT(r.attack_starts, 0u);
  EXPECT_NE(r.summary().find("[attack]"), std::string::npos);
}

}  // namespace
}  // namespace dpv::verify

namespace dpv::core {
namespace {

train::Dataset labelled_cloud(Rng& rng, std::size_t count) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({x0 > 0.0 ? 1.0 : 0.0}));
  }
  return data;
}

nn::Network make_campaign_net(std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

std::vector<CampaignEntry> mixed_entries(Rng& rng) {
  // SAFE (unreachable), UNSAFE (trivially reachable), and a boundary
  // risk the MILP has to decide.
  std::vector<CampaignEntry> entries;
  verify::RiskSpec unreachable("far-out");
  unreachable.output_at_least(0, 1, 1e6);
  verify::RiskSpec reachable("everywhere");
  reachable.output_at_most(0, 1, 1e6);
  verify::RiskSpec boundary("boundary");
  boundary.output_at_least(0, 1, 0.05);
  for (const verify::RiskSpec* risk : {&unreachable, &reachable, &boundary})
    entries.push_back(
        {"x0-positive", labelled_cloud(rng, 120), labelled_cloud(rng, 60), *risk});
  return entries;
}

TEST(CounterexamplePool, SnapshotsAreOrderedAndKeyed) {
  CounterexamplePool pool;
  pool.contribute("risk-a", 2, Tensor::vector1d({2.0}));
  pool.contribute("risk-a", 0, Tensor::vector1d({0.0}));
  pool.contribute("risk-a", 0, Tensor::vector1d({0.5}));
  pool.contribute("risk-b", 1, Tensor::vector1d({9.0}));
  EXPECT_EQ(pool.size(), 4u);

  const std::vector<Tensor> a = pool.snapshot("risk-a");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0][0], 0.0);  // order 0 first, contribution sequence kept
  EXPECT_EQ(a[1][0], 0.5);
  EXPECT_EQ(a[2][0], 2.0);
  EXPECT_EQ(pool.snapshot("risk-b").size(), 1u);
  EXPECT_TRUE(pool.snapshot("unknown-key").empty());
}

TEST(StagedCampaign, VerdictCompatibilityAcrossFalsifyAndThreads) {
  Rng rng(71);
  const nn::Network net = make_campaign_net(73);
  const std::vector<CampaignEntry> entries = mixed_entries(rng);

  WorkflowConfig off;
  off.characterizer.trainer.epochs = 40;
  off.falsify_first = false;
  WorkflowConfig on = off;
  on.falsify_first = true;

  const CampaignReport report_off = run_campaign(net, 2, entries, off);
  const CampaignReport report_on = run_campaign(net, 2, entries, on);

  // Decided verdicts agree entry by entry; only UNKNOWN may improve.
  ASSERT_EQ(report_off.reports.size(), report_on.reports.size());
  for (std::size_t i = 0; i < report_off.reports.size(); ++i) {
    const SafetyVerdict a = report_off.reports[i].safety.verdict;
    const SafetyVerdict b = report_on.reports[i].safety.verdict;
    if (a != SafetyVerdict::kUnknown && b != SafetyVerdict::kUnknown)
      EXPECT_EQ(a, b) << "entry " << i;
  }
  EXPECT_GE(report_on.safe_count + report_on.unsafe_count,
            report_off.safe_count + report_off.unsafe_count);

  // Bit-identical tables across thread counts, in both modes.
  for (WorkflowConfig* config : {&off, &on}) {
    WorkflowConfig threaded = *config;
    threaded.campaign_threads = 4;
    const CampaignReport serial = run_campaign(net, 2, entries, *config);
    const CampaignReport parallel = run_campaign(net, 2, entries, threaded);
    EXPECT_EQ(serial.format_table(), parallel.format_table());
  }
}

TEST(StagedCampaign, FunnelCountersPartitionTheUsableEntries) {
  Rng rng(79);
  const nn::Network net = make_campaign_net(83);
  const std::vector<CampaignEntry> entries = mixed_entries(rng);

  WorkflowConfig config;
  config.characterizer.trainer.epochs = 40;
  const CampaignReport report = run_campaign(net, 2, entries, config);

  const std::size_t funnel_total = report.funnel_attack_falsified +
                                   report.funnel_zonotope_proved +
                                   report.funnel_milp_proved +
                                   report.funnel_milp_falsified + report.funnel_unknown;
  EXPECT_EQ(funnel_total,
            report.safe_count + report.unsafe_count + report.unknown_count);
  EXPECT_EQ(report.funnel_attack_falsified + report.funnel_milp_falsified,
            report.unsafe_count);
  EXPECT_EQ(report.funnel_zonotope_proved + report.funnel_milp_proved,
            report.safe_count);
  // The mixed battery exercises both cheap stages.
  EXPECT_GT(report.funnel_attack_falsified, 0u);
  EXPECT_GT(report.funnel_zonotope_proved, 0u);
  EXPECT_NE(report.format_encoding_summary().find("funnel:"), std::string::npos);

  // Per-entry stage traces agree with the funnel.
  for (const WorkflowReport& wr : report.reports) {
    if (!wr.characterizer_usable) continue;
    ASSERT_FALSE(wr.safety.pipeline.empty());
    EXPECT_EQ(wr.safety.pipeline.front().rung, "attack");
  }
}

TEST(StagedCampaign, PoolRecyclesWitnessesAcrossCampaigns) {
  Rng rng(89);
  const nn::Network net = make_campaign_net(97);
  const std::vector<CampaignEntry> entries = mixed_entries(rng);

  WorkflowConfig config;
  config.characterizer.trainer.epochs = 40;
  config.counterexample_pool = std::make_shared<CounterexamplePool>();
  const CampaignReport first = run_campaign(net, 2, entries, config);
  EXPECT_GT(first.pool_points_contributed, 0u);
  EXPECT_GT(config.counterexample_pool->size(), 0u);

  // A second battery over the same risks starts from the pooled
  // witnesses; the recycled-seed counter proves they were consumed.
  const CampaignReport second = run_campaign(net, 2, entries, config);
  EXPECT_GT(second.attack_seeds_tried, 0u);
  EXPECT_EQ(second.unsafe_count, first.unsafe_count);
}

TEST(StagedCampaign, ConcretizationProducesAnInputSpaceWitness) {
  Rng rng(101);
  const nn::Network net = make_campaign_net(103);
  std::vector<CampaignEntry> entries;
  verify::RiskSpec reachable("everywhere");
  reachable.output_at_most(0, 1, 1e6);
  entries.push_back(
      {"x0-positive", labelled_cloud(rng, 120), labelled_cloud(rng, 60), reachable});

  WorkflowConfig config;
  config.characterizer.trainer.epochs = 40;
  config.concretize_witnesses = true;
  const CampaignReport report = run_campaign(net, 2, entries, config);
  ASSERT_EQ(report.reports.size(), 1u);
  const WorkflowReport& wr = report.reports[0];
  ASSERT_EQ(wr.safety.verdict, SafetyVerdict::kUnsafe);
  ASSERT_TRUE(wr.have_input_witness);
  EXPECT_EQ(wr.input_witness.numel(), net.input_shape().numel());
  // The concretized input's layer-l features approach the witness.
  const Tensor feats = net.forward_prefix(wr.input_witness, 2);
  double dist = 0.0;
  for (std::size_t i = 0; i < feats.numel(); ++i)
    dist = std::max(dist,
                    std::abs(feats[i] - wr.safety.verification.counterexample_activation[i]));
  EXPECT_NEAR(dist, wr.input_witness_distance, 1e-9);
}

}  // namespace
}  // namespace dpv::core
