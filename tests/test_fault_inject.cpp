// Fault-injection harness tests: probe scheduling semantics, and one
// recovery test per armed probe in the catalog — the contract is that an
// injected fault never crashes the process and never flips a verdict; at
// worst the answer degrades to an explained UNKNOWN.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "absint/box_domain.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "core/parallel_pass.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

/// Every test leaves the global harness clean, whatever happens inside.
class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------
// Harness semantics.

TEST_F(FaultInjectTest, DisarmedProbesNeverFire) {
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fault::should_fire("test.probe"));
  EXPECT_EQ(fault::fires("test.probe"), 0u);
}

TEST_F(FaultInjectTest, FireAtSchedulesAreExactAndOneBased) {
  fault::arm("test.probe", 3, 2);  // fire on evaluations 3 and 4
  EXPECT_FALSE(fault::should_fire("test.probe"));
  EXPECT_FALSE(fault::should_fire("test.probe"));
  EXPECT_TRUE(fault::should_fire("test.probe"));
  EXPECT_TRUE(fault::should_fire("test.probe"));
  EXPECT_FALSE(fault::should_fire("test.probe"));
  EXPECT_EQ(fault::hits("test.probe"), 5u);
  EXPECT_EQ(fault::fires("test.probe"), 2u);
}

TEST_F(FaultInjectTest, ArmingOneProbeDoesNotArmAnother) {
  fault::arm("test.probe", 1);
  EXPECT_FALSE(fault::should_fire("test.other"));
  EXPECT_TRUE(fault::should_fire("test.probe"));
}

TEST_F(FaultInjectTest, RearmingReplacesTheSchedule) {
  fault::arm("test.probe", 1);
  EXPECT_TRUE(fault::should_fire("test.probe"));
  fault::arm("test.probe", 2);  // replaces + resets counters
  EXPECT_EQ(fault::hits("test.probe"), 0u);
  EXPECT_FALSE(fault::should_fire("test.probe"));
  EXPECT_TRUE(fault::should_fire("test.probe"));
}

TEST_F(FaultInjectTest, SpecParsing) {
  EXPECT_TRUE(fault::arm_from_spec("test.a:2,test.b:1:3"));
  EXPECT_FALSE(fault::should_fire("test.a"));
  EXPECT_TRUE(fault::should_fire("test.a"));
  EXPECT_TRUE(fault::should_fire("test.b"));
  EXPECT_TRUE(fault::should_fire("test.b"));
  EXPECT_TRUE(fault::should_fire("test.b"));
  EXPECT_FALSE(fault::should_fire("test.b"));

  EXPECT_TRUE(fault::arm_from_spec(""));  // empty spec arms nothing
  EXPECT_FALSE(fault::arm_from_spec("no-colon"));
  EXPECT_FALSE(fault::arm_from_spec("probe:notanumber"));
}

// ---------------------------------------------------------------------
// LP probes: the solver must recover and still produce the right answer.

lp::LpProblem textbook_lp() {
  lp::LpProblem p;
  const std::size_t x = p.add_variable(0.0, 100.0, "x");
  const std::size_t y = p.add_variable(0.0, 100.0, "y");
  p.add_row({{x, 1.0}}, lp::RowSense::kLessEqual, 4.0);
  p.add_row({{y, 2.0}}, lp::RowSense::kLessEqual, 12.0);
  p.add_row({{x, 3.0}, {y, 2.0}}, lp::RowSense::kLessEqual, 18.0);
  p.set_objective({{x, 3.0}, {y, 5.0}}, lp::Objective::kMaximize);
  return p;
}

TEST_F(FaultInjectTest, SingularRefactorizationRecoversToTheOptimum) {
  // A tiny LP solves in a handful of pivots and never reaches the
  // periodic refactorization, so the singular probe is chained behind a
  // non-finite FTRAN: the recovery refactorizes, the refactorization
  // "discovers" a singular basis, and the solver crashes back to the
  // all-logical basis — a two-deep fault cascade that still ends at the
  // true optimum.
  fault::arm("lp.ftran_nonfinite", 1);
  fault::arm("lp.refactor_singular", 1);
  lp::RevisedSimplex solver;
  solver.load(textbook_lp());
  const lp::LpSolution s = solver.solve();
  EXPECT_GE(fault::fires("lp.refactor_singular"), 1u);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_GE(solver.factor_stats().singular_recoveries, 1u);
  EXPECT_GE(solver.factor_stats().nonfinite_recoveries, 1u);
}

TEST_F(FaultInjectTest, NonfiniteFtranRecoversToTheOptimum) {
  fault::arm("lp.ftran_nonfinite", 1);
  lp::RevisedSimplex solver;
  solver.load(textbook_lp());
  const lp::LpSolution s = solver.solve();
  EXPECT_GE(fault::fires("lp.ftran_nonfinite"), 1u);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_GE(solver.factor_stats().nonfinite_recoveries, 1u);
}

TEST_F(FaultInjectTest, NonfiniteBtranRecoversToTheOptimum) {
  fault::arm("lp.btran_nonfinite", 1);
  lp::RevisedSimplex solver;
  solver.load(textbook_lp());
  const lp::LpSolution s = solver.solve();
  EXPECT_GE(fault::fires("lp.btran_nonfinite"), 1u);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_GE(solver.factor_stats().nonfinite_recoveries, 1u);
}

TEST_F(FaultInjectTest, RepeatedNonfiniteFaultsNeverFlipAVerdict) {
  // Drive the probe hard (every FTRAN for a stretch): the solver may
  // burn recoveries, but whatever status it returns must be honest —
  // the one acceptable degradation is "no verdict", never a wrong one.
  fault::arm("lp.ftran_nonfinite", 1, 6);
  lp::RevisedSimplex solver;
  solver.load(textbook_lp());
  const lp::LpSolution s = solver.solve();
  if (s.status == lp::SolveStatus::kOptimal) {
    EXPECT_NEAR(s.objective, 36.0, 1e-6);
  }
  EXPECT_NE(s.status, lp::SolveStatus::kUnbounded);
}

// ---------------------------------------------------------------------
// Verify probe: allocation failure while encoding degrades the query.

TEST_F(FaultInjectTest, EncodeAllocationFailureDegradesToExplainedUnknown) {
  Rng rng(77);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 8);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{8}));
  auto d2 = std::make_unique<nn::Dense>(8, 1);
  d2->init_he(rng);
  net.add(std::move(d2));

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(2, -1.0, 1.0);
  q.risk.output_at_least(0, 1, 0.0);

  fault::arm("verify.encode_alloc", 1);
  const verify::VerificationResult r = verify::TailVerifier().verify(q);
  EXPECT_EQ(fault::fires("verify.encode_alloc"), 1u);
  EXPECT_EQ(r.verdict, verify::Verdict::kUnknown);
  EXPECT_NE(r.note.find("encoding allocation failure"), std::string::npos) << r.note;

  // Recovery is clean: the identical verifier call now succeeds.
  fault::disarm_all();
  const verify::VerificationResult retry = verify::TailVerifier().verify(q);
  EXPECT_NE(retry.verdict, verify::Verdict::kUnknown);
}

// ---------------------------------------------------------------------
// Core probe: a throwing worker drains the pool and names its job.

TEST_F(FaultInjectTest, WorkerThrowSurfacesAsParallelPassErrorWithIdentity) {
  std::vector<int> done(16, 0);
  core::ParallelPassOptions options;
  options.job_label = [](std::size_t j) { return "job " + std::to_string(j); };
  fault::arm("core.worker_throw", 5);
  try {
    core::run_parallel_pass(
        done.size(), 4, [&](std::size_t j) { done[j] = 1; }, options);
    FAIL() << "expected ParallelPassError";
  } catch (const core::ParallelPassError& e) {
    // The wrapper carries which job died and the caller's label for it.
    EXPECT_LT(e.job_index(), done.size());
    EXPECT_EQ(e.job_label(), "job " + std::to_string(e.job_index()));
    EXPECT_NE(std::string(e.what()).find("core.worker_throw"), std::string::npos);
    EXPECT_EQ(done[e.job_index()], 0);  // the dead job never completed
    // The original exception is preserved underneath.
    bool nested_seen = false;
    try {
      std::rethrow_if_nested(e);
    } catch (const std::runtime_error& inner) {
      nested_seen = true;
      EXPECT_NE(std::string(inner.what()).find("core.worker_throw"), std::string::npos);
    }
    EXPECT_TRUE(nested_seen);
  }
}

TEST_F(FaultInjectTest, WorkerThrowStopsClaimingButFinishedWorkStands) {
  // Serial pass, fault on job 3 (1-based eval): jobs 0..1 complete, job
  // 2 dies, jobs 3+ are never claimed — a deterministic partial pass.
  std::vector<int> done(8, 0);
  fault::arm("core.worker_throw", 3);
  EXPECT_THROW(core::run_parallel_pass(done.size(), 1, [&](std::size_t j) { done[j] = 1; },
                                       core::ParallelPassOptions{}),
               core::ParallelPassError);
  EXPECT_EQ(done[0], 1);
  EXPECT_EQ(done[1], 1);
  for (std::size_t j = 2; j < done.size(); ++j) EXPECT_EQ(done[j], 0) << j;
}

TEST_F(FaultInjectTest, DeadlineExpiryDrainsThePoolWithoutAnError) {
  // An expired run control is not a fault: workers simply stop claiming
  // and the pass returns with whatever subset completed.
  RunControl rc;
  rc.cancel();
  core::ParallelPassOptions options;
  options.run_control = &rc;
  std::vector<int> done(8, 0);
  EXPECT_NO_THROW(core::run_parallel_pass(done.size(), 2,
                                          [&](std::size_t j) { done[j] = 1; }, options));
  for (const int d : done) EXPECT_EQ(d, 0);
}

}  // namespace
}  // namespace dpv
