// Forward-pass unit tests for every layer kind, against hand-computed
// values, plus network composition (prefix / suffix) semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::nn {
namespace {

TEST(Dense, ForwardMatchesHandComputation) {
  Dense layer(3, 2);
  layer.set_parameters(Tensor(Shape{2, 3}, {1, 0, -1, 2, 1, 0}),
                       Tensor::vector1d({0.5, -0.5}));
  const Tensor y = layer.forward(Tensor::vector1d({1, 2, 3}));
  EXPECT_DOUBLE_EQ(y[0], 1 - 3 + 0.5);
  EXPECT_DOUBLE_EQ(y[1], 2 + 2 - 0.5);
}

TEST(Dense, RejectsBadParameterShapes) {
  Dense layer(3, 2);
  EXPECT_THROW(layer.set_parameters(Tensor(Shape{3, 2}), Tensor(Shape{2})),
               ContractViolation);
  EXPECT_THROW(layer.set_parameters(Tensor(Shape{2, 3}), Tensor(Shape{3})),
               ContractViolation);
}

TEST(Activations, ReluSigmoidTanh) {
  const Tensor x = Tensor::vector1d({-2.0, 0.0, 3.0});
  const ReLU relu(Shape{3});
  const Sigmoid sigmoid(Shape{3});
  const Tanh tanh_layer(Shape{3});
  const Tensor yr = relu.forward(x);
  EXPECT_DOUBLE_EQ(yr[0], 0.0);
  EXPECT_DOUBLE_EQ(yr[1], 0.0);
  EXPECT_DOUBLE_EQ(yr[2], 3.0);
  const Tensor ys = sigmoid.forward(x);
  EXPECT_NEAR(ys[1], 0.5, 1e-12);
  EXPECT_NEAR(ys[2], 1.0 / (1.0 + std::exp(-3.0)), 1e-12);
  const Tensor yt = tanh_layer.forward(x);
  EXPECT_NEAR(yt[0], std::tanh(-2.0), 1e-12);
}

TEST(BatchNorm, InferenceIsFrozenAffine) {
  BatchNorm bn(2);
  bn.set_affine(Tensor::vector1d({2.0, 1.0}), Tensor::vector1d({1.0, -1.0}));
  bn.set_statistics(Tensor::vector1d({0.5, -0.5}), Tensor::vector1d({4.0, 1.0}));
  const Tensor y = bn.forward(Tensor::vector1d({2.5, 0.5}));
  // y0 = 2*(2.5-0.5)/sqrt(4+eps) + 1 ~= 3; y1 = (0.5+0.5)/sqrt(1+eps) - 1 ~= 0.
  EXPECT_NEAR(y[0], 3.0, 1e-4);
  EXPECT_NEAR(y[1], 0.0, 1e-4);
  EXPECT_NEAR(bn.effective_scale(0) * 2.5 + bn.effective_shift(0), y[0], 1e-12);
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  BatchNorm bn(1, 1e-8);
  std::vector<Tensor> batch{Tensor::vector1d({1.0}), Tensor::vector1d({3.0})};
  const std::vector<Tensor> out = bn.forward_batch(batch, /*training=*/true);
  // mean 2, var 1 -> normalized to -1 and +1 (gamma=1, beta=0).
  EXPECT_NEAR(out[0][0], -1.0, 1e-3);
  EXPECT_NEAR(out[1][0], 1.0, 1e-3);
}

TEST(Conv2D, IdentityKernelPreservesInterior) {
  Conv2D conv(1, 3, 3, 1, 3, 1, 1);
  Tensor w(Shape{9});
  w[4] = 1.0;  // center tap
  conv.set_parameters(w, Tensor::vector1d({0.0}));
  Tensor x(Shape{1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<double>(i);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 3}));
  for (std::size_t i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Conv2D, SumKernelWithPaddingHandlesBorders) {
  Conv2D conv(1, 2, 2, 1, 3, 1, 1);
  Tensor w(Shape{9});
  w.fill(1.0);
  conv.set_parameters(w, Tensor::vector1d({0.0}));
  const Tensor x(Shape{1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x);
  // Every 3x3 window over the padded 2x2 image sums all four values.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], 10.0);
}

TEST(Conv2D, StrideReducesResolution) {
  Conv2D conv(1, 4, 4, 1, 2, 2, 0);
  Tensor w(Shape{4});
  w.fill(0.25);  // 2x2 mean
  conv.set_parameters(w, Tensor::vector1d({0.0}));
  Tensor x(Shape{1, 4, 4});
  x.fill(2.0);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], 2.0);
}

TEST(MaxPool2D, SelectsWindowMaxima) {
  MaxPool2D pool(1, 2, 4, 2);
  const Tensor x(Shape{1, 2, 4}, {1, 5, 2, 0, 3, -1, 7, 2});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2}));
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(AvgPool2D, AveragesWindows) {
  AvgPool2D pool(1, 2, 2, 2);
  const Tensor x(Shape{1, 2, 2}, {1, 2, 3, 6});
  const Tensor y = pool.forward(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(Pool2D, RejectsIndivisibleExtents) {
  EXPECT_THROW(MaxPool2D(1, 3, 4, 2), ContractViolation);
}

TEST(Flatten, ReshapesOnly) {
  const Flatten flat(Shape{2, 2, 2});
  Tensor x(Shape{2, 2, 2});
  x.at3(1, 1, 1) = 9.0;
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (Shape{8}));
  EXPECT_DOUBLE_EQ(y[7], 9.0);
}

Network make_two_layer_net() {
  Network net;
  auto d1 = std::make_unique<Dense>(2, 2);
  d1->set_parameters(Tensor(Shape{2, 2}, {1, -1, 2, 0}), Tensor::vector1d({0, 1}));
  net.add(std::move(d1));
  net.add(std::make_unique<ReLU>(Shape{2}));
  auto d2 = std::make_unique<Dense>(2, 1);
  d2->set_parameters(Tensor(Shape{1, 2}, {1, 1}), Tensor::vector1d({-0.5}));
  net.add(std::move(d2));
  return net;
}

TEST(Network, PrefixSuffixComposition) {
  const Network net = make_two_layer_net();
  const Tensor x = Tensor::vector1d({1.0, 2.0});
  const Tensor full = net.forward(x);
  for (std::size_t l = 0; l <= net.layer_count(); ++l) {
    const Tensor mid = net.forward_prefix(x, l);
    const Tensor recomposed = net.forward_suffix(mid, l);
    EXPECT_NEAR(recomposed[0], full[0], 1e-12) << "cut at layer " << l;
  }
}

TEST(Network, AllLayerOutputsMatchPrefixes) {
  const Network net = make_two_layer_net();
  const Tensor x = Tensor::vector1d({-1.0, 0.5});
  const std::vector<Tensor> outs = net.all_layer_outputs(x);
  ASSERT_EQ(outs.size(), net.layer_count());
  for (std::size_t l = 1; l <= net.layer_count(); ++l)
    EXPECT_EQ(max_abs_diff(outs[l - 1], net.forward_prefix(x, l)), 0.0);
}

TEST(Network, AddRejectsIncompatibleLayer) {
  Network net;
  net.add(std::make_unique<Dense>(2, 3));
  EXPECT_THROW(net.add(std::make_unique<Dense>(4, 1)), ContractViolation);
}

TEST(Network, CloneIsDeepAndEquivalent) {
  Network net = make_two_layer_net();
  Network copy = net.clone();
  const Tensor x = Tensor::vector1d({0.3, -0.7});
  EXPECT_EQ(max_abs_diff(net.forward(x), copy.forward(x)), 0.0);
  // Mutating the copy must not affect the original.
  static_cast<Dense&>(copy.layer(0)).set_parameters(Tensor(Shape{2, 2}), Tensor(Shape{2}));
  EXPECT_GT(max_abs_diff(net.forward(x), copy.forward(x)), 0.0);
}

TEST(Network, ClonePrefixSuffixPartition) {
  Network net = make_two_layer_net();
  const Tensor x = Tensor::vector1d({2.0, -1.0});
  for (std::size_t l = 0; l <= net.layer_count(); ++l) {
    Network prefix = net.clone_prefix(l);
    Network suffix = net.clone_suffix(l);
    Tensor v = x;
    if (prefix.layer_count() > 0) v = prefix.forward(v);
    if (suffix.layer_count() > 0) v = suffix.forward(v);
    EXPECT_NEAR(v[0], net.forward(x)[0], 1e-12);
  }
}

TEST(Network, EmptyNetworkShapeQueriesThrow) {
  const Network net;
  EXPECT_THROW(net.input_shape(), ContractViolation);
  EXPECT_THROW(net.output_shape(), ContractViolation);
}

}  // namespace
}  // namespace dpv::nn
