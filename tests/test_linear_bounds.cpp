// Tests for the DeepPoly-style symbolic linear-bounds domain: form
// evaluation, soundness against sampled executions, guaranteed dominance
// over interval propagation, and encoder integration (kSymbolic).
#include <gtest/gtest.h>

#include <memory>

#include "absint/box_domain.hpp"
#include "absint/linear_bounds.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/pool2d.hpp"
#include "verify/verifier.hpp"

namespace dpv::absint {
namespace {

TEST(LinearForm, MinMaxOverBox) {
  const LinearForm form{{2.0, -1.0}, 0.5};
  const Box box{Interval(0.0, 1.0), Interval(-1.0, 2.0)};
  // min: 2*0 - 1*2 + 0.5 = -1.5; max: 2*1 - 1*(-1) + 0.5 = 3.5
  EXPECT_DOUBLE_EQ(form.min_over(box), -1.5);
  EXPECT_DOUBLE_EQ(form.max_over(box), 3.5);
}

TEST(LinearBounds, IdentityFromBox) {
  const Box box{Interval(-1.0, 2.0), Interval(0.5, 1.0)};
  const LinearBounds state = LinearBounds::from_box(box);
  EXPECT_EQ(state.dimensions(), 2u);
  EXPECT_DOUBLE_EQ(state.concrete()[0].lo, -1.0);
  EXPECT_DOUBLE_EQ(state.concrete()[1].hi, 1.0);
}

TEST(LinearBounds, AffineKeepsCorrelation) {
  // y = x - x must concretize to exactly 0 (boxes would give [-2, 2]).
  const Box box{Interval(-1.0, 1.0)};
  const LinearBounds state = LinearBounds::from_box(box);
  const LinearBounds mid = state.affine({{1.0}, {1.0}}, {0.0, 0.0});
  const LinearBounds out = mid.affine({{1.0, -1.0}}, {0.0});
  EXPECT_NEAR(out.concrete()[0].lo, 0.0, 1e-12);
  EXPECT_NEAR(out.concrete()[0].hi, 0.0, 1e-12);
}

TEST(LinearBounds, ReluStableCases) {
  const Box box{Interval(0.5, 2.0), Interval(-3.0, -1.0)};
  const LinearBounds out = LinearBounds::from_box(box).relu();
  EXPECT_DOUBLE_EQ(out.concrete()[0].lo, 0.5);
  EXPECT_DOUBLE_EQ(out.concrete()[0].hi, 2.0);
  EXPECT_DOUBLE_EQ(out.concrete()[1].lo, 0.0);
  EXPECT_DOUBLE_EQ(out.concrete()[1].hi, 0.0);
}

nn::Network make_random_tail(Rng& rng, std::size_t in_n, std::size_t hidden,
                             std::size_t out_n, bool with_bn) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  if (with_bn) {
    auto bn = std::make_unique<nn::BatchNorm>(hidden);
    bn->set_statistics(Tensor::randn(Shape{hidden}, rng, 0.3),
                       Tensor(Shape{hidden}, std::vector<double>(hidden, 1.5)));
    bn->set_affine(Tensor::randn(Shape{hidden}, rng, 0.4),
                   Tensor::randn(Shape{hidden}, rng, 0.2));
    net.add(std::move(bn));
  }
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, out_n);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

class SymbolicSoundnessSweep : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SymbolicSoundnessSweep, SampledExecutionsInsideTrace) {
  const auto [seed, with_bn] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 409 + 3);
  nn::Network net = make_random_tail(rng, 4, 7, 3, with_bn);
  const Box input_box = uniform_box(4, -1.0, 1.0);
  const std::vector<Box> trace =
      symbolic_bounds_trace(net, input_box, 0, net.layer_count());
  ASSERT_EQ(trace.size(), net.layer_count());

  for (int sample = 0; sample < 60; ++sample) {
    Tensor x(Shape{4});
    for (std::size_t i = 0; i < 4; ++i) x[i] = rng.uniform(-1.0, 1.0);
    const std::vector<Tensor> outs = net.all_layer_outputs(x);
    for (std::size_t layer = 0; layer < outs.size(); ++layer) {
      for (std::size_t i = 0; i < trace[layer].size(); ++i) {
        EXPECT_GE(outs[layer][i], trace[layer][i].lo - 1e-9)
            << "seed " << seed << " layer " << layer;
        EXPECT_LE(outs[layer][i], trace[layer][i].hi + 1e-9)
            << "seed " << seed << " layer " << layer;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTails, SymbolicSoundnessSweep,
                         ::testing::Combine(::testing::Range(0, 8), ::testing::Bool()));

class SymbolicDominanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicDominanceSweep, NeverLooserThanIntervals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 7);
  nn::Network net = make_random_tail(rng, 5, 8, 2, GetParam() % 2 == 0);
  const Box input_box = uniform_box(5, -1.0, 1.0);
  const std::vector<Box> symbolic =
      symbolic_bounds_trace(net, input_box, 0, net.layer_count());
  const std::vector<Box> interval =
      propagate_box_trace(net, input_box, 0, net.layer_count());
  ASSERT_EQ(symbolic.size(), interval.size());
  for (std::size_t layer = 0; layer < symbolic.size(); ++layer)
    EXPECT_LE(box_total_width(symbolic[layer]), box_total_width(interval[layer]) + 1e-9)
        << "layer " << layer;
}

INSTANTIATE_TEST_SUITE_P(RandomTails, SymbolicDominanceSweep, ::testing::Range(0, 10));

TEST(SymbolicBounds, StrictlyTighterOnCorrelatedChain) {
  // f(x) = relu(x) - relu(x): interval forgets the shared input, symbolic
  // bounds keep it and prove the output is exactly 0.
  nn::Network net;
  auto split = std::make_unique<nn::Dense>(1, 2);
  split->set_parameters(Tensor(Shape{2, 1}, {1.0, 1.0}), Tensor::vector1d({0.0, 0.0}));
  net.add(std::move(split));
  net.add(std::make_unique<nn::ReLU>(Shape{2}));
  auto merge = std::make_unique<nn::Dense>(2, 1);
  merge->set_parameters(Tensor(Shape{1, 2}, {1.0, -1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(merge));

  const Box input_box = uniform_box(1, 0.25, 1.0);  // ReLU stable-active
  const Box symbolic =
      symbolic_bounds_trace(net, input_box, 0, net.layer_count()).back();
  const Box interval =
      propagate_box_trace(net, input_box, 0, net.layer_count()).back();
  EXPECT_NEAR(symbolic[0].lo, 0.0, 1e-12);
  EXPECT_NEAR(symbolic[0].hi, 0.0, 1e-12);
  EXPECT_NEAR(interval[0].width(), 1.5, 1e-12);
}

TEST(SymbolicBounds, UnsupportedLayerThrows) {
  nn::Network net;
  net.add(std::make_unique<nn::MaxPool2D>(1, 2, 2, 2));
  EXPECT_THROW(symbolic_bounds_trace(net, uniform_box(4, 0.0, 1.0), 0, 1),
               ContractViolation);
}

class SymbolicEncoderSweep : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicEncoderSweep, KSymbolicNeverChangesVerdictNorAddsBinaries) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 89 + 17);
  nn::Network net = make_random_tail(rng, 4, 6, 1, false);

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = uniform_box(4, -1.0, 1.0);
  q.risk.output_at_least(0, 1, rng.uniform(-0.5, 2.0));

  verify::TailVerifierOptions interval_opts;
  verify::TailVerifierOptions symbolic_opts;
  symbolic_opts.encode.bounds = verify::BoundMethod::kSymbolic;
  const verify::VerificationResult a = verify::TailVerifier(interval_opts).verify(q);
  const verify::VerificationResult b = verify::TailVerifier(symbolic_opts).verify(q);
  EXPECT_EQ(a.verdict, b.verdict) << "seed " << GetParam();
  EXPECT_LE(b.encoding.binaries, a.encoding.binaries) << "seed " << GetParam();
  if (b.verdict == verify::Verdict::kUnsafe) EXPECT_TRUE(b.counterexample_validated);
}

INSTANTIATE_TEST_SUITE_P(RandomTails, SymbolicEncoderSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace dpv::absint
