// Cross-module integration tests: artifacts that travel through files
// (network, monitors) must reproduce identical verification verdicts, and
// the solver stack must stay consistent at moderate scale.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/rng.hpp"
#include "lp/simplex.hpp"
#include "monitor/activation_recorder.hpp"
#include "monitor/diff_monitor.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/serialize.hpp"
#include "verify/verifier.hpp"

namespace dpv {
namespace {

nn::Network make_tail(Rng& rng, std::size_t in_n, std::size_t hidden) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

TEST(Integration, VerdictSurvivesModelAndMonitorPersistence) {
  Rng rng(61);
  nn::Network net = make_tail(rng, 4, 6);

  // Build S̃ from synthetic "ODD" activations.
  std::vector<Tensor> odd;
  for (int i = 0; i < 60; ++i) odd.push_back(Tensor::randn(Shape{4}, rng, 0.6));
  const std::vector<Tensor> activations = monitor::record_activations(net, 0, odd);
  const monitor::DiffMonitor mon = monitor::DiffMonitor::from_activations(activations);

  verify::VerificationQuery query;
  query.network = &net;
  query.attach_layer = 0;
  query.input_box = mon.box();
  query.diff_bounds = mon.diff_bounds();
  query.risk.output_at_least(0, 1, 0.4);
  const verify::VerificationResult original = verify::TailVerifier().verify(query);

  // Round-trip network and monitor through their text formats.
  std::stringstream net_buffer, mon_buffer;
  nn::save(net, net_buffer);
  mon.save(mon_buffer);
  nn::Network restored_net = nn::load(net_buffer);
  const monitor::DiffMonitor restored_mon = monitor::DiffMonitor::load(mon_buffer);

  verify::VerificationQuery restored_query;
  restored_query.network = &restored_net;
  restored_query.attach_layer = 0;
  restored_query.input_box = restored_mon.box();
  restored_query.diff_bounds = restored_mon.diff_bounds();
  restored_query.risk = query.risk;
  const verify::VerificationResult restored = verify::TailVerifier().verify(restored_query);

  EXPECT_EQ(restored.verdict, original.verdict);
  if (original.verdict == verify::Verdict::kUnsafe) {
    EXPECT_TRUE(restored.counterexample_validated);
    // Bit-exact serialization -> bit-exact counterexamples.
    for (std::size_t i = 0; i < original.counterexample_activation.numel(); ++i)
      EXPECT_DOUBLE_EQ(restored.counterexample_activation[i],
                       original.counterexample_activation[i]);
  }
}

TEST(Integration, VerificationIsDeterministicAcrossRepeats) {
  Rng rng(67);
  nn::Network net = make_tail(rng, 3, 5);
  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(3, -1.0, 1.0);
  q.risk.output_at_least(0, 1, 0.5);

  const verify::VerificationResult first = verify::TailVerifier().verify(q);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const verify::VerificationResult again = verify::TailVerifier().verify(q);
    EXPECT_EQ(again.verdict, first.verdict);
    EXPECT_EQ(again.milp_nodes, first.milp_nodes);
    EXPECT_EQ(again.lp_iterations, first.lp_iterations);
  }
}

TEST(Integration, ModerateScaleLpSolves) {
  // 30 variables, 40 rows: well beyond the unit tests, still fast and
  // feasible by construction.
  Rng rng(71);
  lp::LpProblem p;
  std::vector<double> interior(30);
  for (std::size_t i = 0; i < 30; ++i) {
    p.add_variable(-5.0, 5.0);
    interior[i] = rng.uniform(-1.0, 1.0);
  }
  for (std::size_t r = 0; r < 40; ++r) {
    std::vector<lp::LinearTerm> terms;
    double activity = 0.0;
    for (std::size_t c = 0; c < 30; ++c) {
      const double w = rng.uniform(-1.0, 1.0);
      terms.push_back({c, w});
      activity += w * interior[c];
    }
    p.add_row(terms, lp::RowSense::kLessEqual, activity + rng.uniform(0.2, 1.0));
  }
  std::vector<lp::LinearTerm> obj;
  for (std::size_t c = 0; c < 30; ++c) obj.push_back({c, rng.uniform(-1.0, 1.0)});
  p.set_objective(obj, lp::Objective::kMinimize);

  const lp::LpSolution s = lp::SimplexSolver().solve(p);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  // The optimum must not be worse than the known feasible interior point.
  double interior_value = 0.0;
  for (std::size_t c = 0; c < 30; ++c) interior_value += obj[c].coeff * interior[c];
  EXPECT_LE(s.objective, interior_value + 1e-6);
}

TEST(Integration, DeepTailVerificationEndToEnd) {
  // Four hidden layers with mixed ReLU / LeakyReLU / BatchNorm-free path:
  // the encoder, bound pre-passes and solver must agree on a forced proof.
  Rng rng(73);
  nn::Network net;
  std::size_t in_n = 4;
  for (int d = 0; d < 4; ++d) {
    auto dense = std::make_unique<nn::Dense>(in_n, 6);
    dense->init_he(rng);
    net.add(std::move(dense));
    if (d % 2 == 0)
      net.add(std::make_unique<nn::ReLU>(Shape{6}));
    else
      net.add(std::make_unique<nn::LeakyReLU>(Shape{6}, 0.1));
    in_n = 6;
  }
  auto out = std::make_unique<nn::Dense>(6, 1);
  out->init_he(rng);
  net.add(std::move(out));

  verify::VerificationQuery q;
  q.network = &net;
  q.attach_layer = 0;
  q.input_box = absint::uniform_box(4, -0.5, 0.5);
  q.risk.output_at_least(0, 1, 1e5);  // unreachable

  for (const verify::BoundMethod method :
       {verify::BoundMethod::kInterval, verify::BoundMethod::kSymbolic,
        verify::BoundMethod::kLpTightening}) {
    verify::TailVerifierOptions options;
    options.encode.bounds = method;
    const verify::VerificationResult r = verify::TailVerifier(options).verify(q);
    EXPECT_EQ(r.verdict, verify::Verdict::kSafe)
        << "bound method " << static_cast<int>(method);
  }
}

}  // namespace
}  // namespace dpv
