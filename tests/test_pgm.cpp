// PGM export/import round-trip tests.
#include <gtest/gtest.h>

#include <fstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/pgm.hpp"
#include "data/renderer.hpp"
#include "tensor/tensor_ops.hpp"

namespace dpv::data {
namespace {

TEST(Pgm, RoundTripWithinQuantization) {
  Rng rng(3);
  RoadScenario s = sample_scenario(rng);
  const RenderConfig config;
  const Tensor image = render_road_image(s, config);
  const std::string path = ::testing::TempDir() + "/dpv_frame.pgm";
  write_pgm(image, path);
  const Tensor restored = read_pgm(path);
  ASSERT_EQ(restored.shape(), image.shape());
  // 8-bit quantization: error at most half a step.
  EXPECT_LE(max_abs_diff(image, restored), 0.5 / 255.0 + 1e-12);
}

TEST(Pgm, AcceptsRank2Tensors) {
  Tensor image(Shape{2, 3});
  image.at2(0, 0) = 1.0;
  image.at2(1, 2) = 0.5;
  const std::string path = ::testing::TempDir() + "/dpv_rank2.pgm";
  write_pgm(image, path);
  const Tensor restored = read_pgm(path);
  EXPECT_EQ(restored.shape(), (Shape{1, 2, 3}));
  EXPECT_NEAR(restored.at3(0, 0, 0), 1.0, 1e-9);
}

TEST(Pgm, ClampsOutOfRangeValues) {
  Tensor image(Shape{1, 1, 2});
  image[0] = -3.0;
  image[1] = 7.0;
  const std::string path = ::testing::TempDir() + "/dpv_clamp.pgm";
  write_pgm(image, path);
  const Tensor restored = read_pgm(path);
  EXPECT_DOUBLE_EQ(restored[0], 0.0);
  EXPECT_DOUBLE_EQ(restored[1], 1.0);
}

TEST(Pgm, RejectsMultiChannelAndBadRank) {
  EXPECT_THROW(write_pgm(Tensor(Shape{3, 4, 4}), "/tmp/x.pgm"), ContractViolation);
  EXPECT_THROW(write_pgm(Tensor(Shape{8}), "/tmp/x.pgm"), ContractViolation);
}

TEST(Pgm, RejectsMissingOrMalformedFiles) {
  EXPECT_THROW(read_pgm("/nonexistent/file.pgm"), ContractViolation);
  const std::string path = ::testing::TempDir() + "/dpv_bad.pgm";
  {
    std::ofstream out(path);
    out << "P5\n2 2\n255\n";
  }
  EXPECT_THROW(read_pgm(path), ContractViolation);
}

}  // namespace
}  // namespace dpv::data
