// Simplex solver unit tests: known optima, infeasibility, degeneracy,
// equality handling, bound handling, and randomized feasibility probes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"

namespace dpv::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum (2, 6) -> 36.
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 100.0, "x");
  const std::size_t y = p.add_variable(0.0, 100.0, "y");
  p.add_row({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  p.add_row({{y, 2.0}}, RowSense::kLessEqual, 12.0);
  p.add_row({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 18.0);
  p.set_objective({{x, 3.0}, {y, 5.0}}, Objective::kMaximize);

  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.values[x], 2.0, kTol);
  EXPECT_NEAR(s.values[y], 6.0, kTol);
}

TEST(Simplex, SolvesMinimizationWithGreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3. Optimum (7, 3) -> 23.
  LpProblem p;
  const std::size_t x = p.add_variable(2.0, 100.0, "x");
  const std::size_t y = p.add_variable(3.0, 100.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kGreaterEqual, 10.0);
  p.set_objective({{x, 2.0}, {y, 3.0}}, Objective::kMinimize);

  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 23.0, kTol);
  EXPECT_NEAR(s.values[x], 7.0, kTol);
  EXPECT_NEAR(s.values[y], 3.0, kTol);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + y s.t. x + 2y = 8, x - y = 2. Unique point (4, 2) -> 6.
  LpProblem p;
  const std::size_t x = p.add_variable(-50.0, 50.0, "x");
  const std::size_t y = p.add_variable(-50.0, 50.0, "y");
  p.add_row({{x, 1.0}, {y, 2.0}}, RowSense::kEqual, 8.0);
  p.add_row({{x, 1.0}, {y, -1.0}}, RowSense::kEqual, 2.0);
  p.set_objective({{x, 1.0}, {y, 1.0}}, Objective::kMinimize);

  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 4.0, kTol);
  EXPECT_NEAR(s.values[y], 2.0, kTol);
  EXPECT_NEAR(s.objective, 6.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  p.add_row({{x, 1.0}}, RowSense::kGreaterEqual, 5.0);
  p.add_row({{x, 1.0}}, RowSense::kLessEqual, 3.0);
  const LpSolution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibilityViaEqualities) {
  LpProblem p;
  const std::size_t x = p.add_variable(-5.0, 5.0, "x");
  const std::size_t y = p.add_variable(-5.0, 5.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 3.0);
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 4.0);
  const LpSolution s = SimplexSolver().solve(p);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Simplex, NegativeLowerBoundsAreHandled) {
  // min x + y with x in [-3, 5], y in [-2, 4], x + y >= -4. Optimum -4 on
  // the constraint line (bounds allow -5, the row cuts it).
  LpProblem p;
  const std::size_t x = p.add_variable(-3.0, 5.0, "x");
  const std::size_t y = p.add_variable(-2.0, 4.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kGreaterEqual, -4.0);
  p.set_objective({{x, 1.0}, {y, 1.0}}, Objective::kMinimize);
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, kTol);
}

TEST(Simplex, PureBoundsProblem) {
  // No rows at all: optimum sits on the box corner.
  LpProblem p;
  const std::size_t x = p.add_variable(-1.5, 2.5, "x");
  const std::size_t y = p.add_variable(0.5, 3.0, "y");
  p.set_objective({{x, 1.0}, {y, -1.0}}, Objective::kMinimize);
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], -1.5, kTol);
  EXPECT_NEAR(s.values[y], 3.0, kTol);
}

TEST(Simplex, FixedVariablesActAsConstants) {
  LpProblem p;
  const std::size_t x = p.add_variable(2.0, 2.0, "x");  // fixed
  const std::size_t y = p.add_variable(0.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 6.0);
  p.set_objective({{y, 1.0}}, Objective::kMaximize);
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, kTol);
  EXPECT_NEAR(s.values[y], 4.0, kTol);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy: several redundant rows through the
  // same vertex.
  LpProblem p;
  const std::size_t x = p.add_variable(0.0, 10.0, "x");
  const std::size_t y = p.add_variable(0.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 4.0);
  p.add_row({{x, 2.0}, {y, 2.0}}, RowSense::kLessEqual, 8.0);
  p.add_row({{x, 3.0}, {y, 3.0}}, RowSense::kLessEqual, 12.0);
  p.add_row({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  p.set_objective({{x, 1.0}, {y, 2.0}}, Objective::kMaximize);
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, kTol);
}

TEST(Simplex, RedundantEqualityRowsAreDropped) {
  // The duplicated equality makes the phase-1 basis singular; the solver
  // must drop the redundant row rather than fail.
  LpProblem p;
  const std::size_t x = p.add_variable(-10.0, 10.0, "x");
  const std::size_t y = p.add_variable(-10.0, 10.0, "y");
  p.add_row({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 4.0);
  p.add_row({{x, 2.0}, {y, 2.0}}, RowSense::kEqual, 8.0);
  p.set_objective({{x, 1.0}}, Objective::kMaximize);
  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 10.0, kTol);
  EXPECT_NEAR(s.values[y], -6.0, kTol);
}

TEST(Simplex, RejectsInfiniteBounds) {
  LpProblem p;
  EXPECT_THROW(p.add_variable(0.0, std::numeric_limits<double>::infinity()),
               ContractViolation);
}

TEST(Simplex, RejectsInvertedBounds) {
  LpProblem p;
  EXPECT_THROW(p.add_variable(1.0, 0.0), ContractViolation);
}

// Property sweep: random box-bounded LPs with a known interior point.
// The solver must (a) declare them feasible-optimal and (b) return a
// point satisfying all rows and bounds.
class SimplexRandomFeasible : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomFeasible, OptimumRespectsAllConstraints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 10));

  LpProblem p;
  std::vector<double> interior(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = rng.uniform(0.5, 5.0);
    p.add_variable(lo, hi);
    interior[i] = 0.5 * (lo + hi);
  }
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  for (std::size_t r = 0; r < m; ++r) {
    double activity = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      rows[r][c] = rng.uniform(-2.0, 2.0);
      activity += rows[r][c] * interior[c];
    }
    // Slack the row so the interior point stays feasible.
    std::vector<LinearTerm> terms;
    for (std::size_t c = 0; c < n; ++c) terms.push_back({c, rows[r][c]});
    p.add_row(terms, RowSense::kLessEqual, activity + rng.uniform(0.1, 2.0));
  }
  std::vector<LinearTerm> objective;
  for (std::size_t c = 0; c < n; ++c) objective.push_back({c, rng.uniform(-1.0, 1.0)});
  p.set_objective(objective, Objective::kMinimize);

  const LpSolution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
  for (std::size_t c = 0; c < n; ++c) {
    EXPECT_GE(s.values[c], p.lower_bound(c) - kTol);
    EXPECT_LE(s.values[c], p.upper_bound(c) + kTol);
  }
  for (std::size_t r = 0; r < m; ++r) {
    double activity = 0.0;
    for (std::size_t c = 0; c < n; ++c) activity += rows[r][c] * s.values[c];
    EXPECT_LE(activity, p.rows()[r].rhs + 1e-5);
  }
  // The optimum must not beat the interior point by less than it should:
  // sanity check that it is at least as good as a feasible point we know.
  double interior_obj = 0.0;
  for (std::size_t c = 0; c < n; ++c) interior_obj += objective[c].coeff * interior[c];
  EXPECT_LE(s.objective, interior_obj + kTol);

  // The revised simplex must reproduce the dense-tableau optimum under
  // both pricing rules (the Devex default and the Dantzig baseline).
  for (const PricingRule pricing : {PricingRule::kDantzig, PricingRule::kDevex}) {
    SimplexOptions options;
    options.pricing = pricing;
    RevisedSimplex revised(options);
    revised.load(p);
    const LpSolution rs = revised.solve();
    ASSERT_EQ(rs.status, SolveStatus::kOptimal)
        << "seed " << GetParam() << " pricing " << pricing_rule_name(pricing);
    EXPECT_NEAR(rs.objective, s.objective, kTol)
        << "seed " << GetParam() << " pricing " << pricing_rule_name(pricing);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandomFeasible, ::testing::Range(0, 25));

}  // namespace
}  // namespace dpv::lp
