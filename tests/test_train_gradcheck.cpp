// Property-based gradient verification: analytic backward passes of every
// trainable layer arrangement are checked against central differences.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "train/gradcheck.hpp"
#include "train/loss.hpp"

namespace dpv::train {
namespace {

constexpr double kRelTol = 2e-4;

struct GradCase {
  std::string name;
  // Builds the network under test; returns (net, input shape).
  nn::Network (*build)(Rng&);
  Shape input_shape;
};

nn::Network build_dense(Rng& rng) {
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(5, 3);
  d->init_he(rng);
  net.add(std::move(d));
  return net;
}

nn::Network build_dense_relu_dense(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(4, 6);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{6}));
  auto d2 = std::make_unique<nn::Dense>(6, 2);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

nn::Network build_sigmoid_tanh(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(3, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::Sigmoid>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 4);
  d2->init_he(rng);
  net.add(std::move(d2));
  net.add(std::make_unique<nn::Tanh>(Shape{4}));
  auto d3 = std::make_unique<nn::Dense>(4, 1);
  d3->init_he(rng);
  net.add(std::move(d3));
  return net;
}

nn::Network build_conv_pool(Rng& rng) {
  nn::Network net;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 4, 2, 3, 1, 1);
  conv->init_he(rng);
  net.add(std::move(conv));
  net.add(std::make_unique<nn::ReLU>(Shape{2, 4, 4}));
  net.add(std::make_unique<nn::MaxPool2D>(2, 4, 4, 2));
  net.add(std::make_unique<nn::Flatten>(Shape{2, 2, 2}));
  auto d = std::make_unique<nn::Dense>(8, 2);
  d->init_he(rng);
  net.add(std::move(d));
  return net;
}

nn::Network build_conv_stride(Rng& rng) {
  nn::Network net;
  auto conv = std::make_unique<nn::Conv2D>(2, 4, 6, 3, 2, 2, 0);
  conv->init_he(rng);
  net.add(std::move(conv));
  net.add(std::make_unique<nn::Flatten>(Shape{3, 2, 3}));
  auto d = std::make_unique<nn::Dense>(18, 2);
  d->init_he(rng);
  net.add(std::move(d));
  return net;
}

nn::Network build_avgpool(Rng& rng) {
  nn::Network net;
  net.add(std::make_unique<nn::AvgPool2D>(1, 4, 4, 2));
  net.add(std::make_unique<nn::Flatten>(Shape{1, 2, 2}));
  auto d = std::make_unique<nn::Dense>(4, 2);
  d->init_he(rng);
  net.add(std::move(d));
  return net;
}

nn::Network build_leaky(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(4, 6);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{6}, 0.1));
  auto d2 = std::make_unique<nn::Dense>(6, 2);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

const GradCase kCases[] = {
    {"dense", &build_dense, Shape{5}},
    {"dense_relu_dense", &build_dense_relu_dense, Shape{4}},
    {"sigmoid_tanh", &build_sigmoid_tanh, Shape{3}},
    {"conv_pool", &build_conv_pool, Shape{1, 4, 4}},
    {"conv_stride", &build_conv_stride, Shape{2, 4, 6}},
    {"avgpool", &build_avgpool, Shape{1, 4, 4}},
    {"leaky_relu", &build_leaky, Shape{4}},
};

class GradCheckSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GradCheckSweep, ParameterGradientsMatchNumerical) {
  const auto [case_idx, seed] = GetParam();
  const GradCase& c = kCases[case_idx];
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 7);
  nn::Network net = c.build(rng);
  const Tensor input = Tensor::randn(c.input_shape, rng, 1.0);
  const Tensor target = Tensor::randn(net.output_shape(), rng, 1.0);
  const MseLoss loss;
  const GradCheckResult result = check_parameter_gradients(net, input, target, loss);
  EXPECT_LT(result.max_rel_error, kRelTol) << c.name << " seed " << seed;
}

TEST_P(GradCheckSweep, InputGradientsMatchNumerical) {
  const auto [case_idx, seed] = GetParam();
  const GradCase& c = kCases[case_idx];
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 3);
  nn::Network net = c.build(rng);
  const Tensor input = Tensor::randn(c.input_shape, rng, 1.0);
  const Tensor target = Tensor::randn(net.output_shape(), rng, 1.0);
  const MseLoss loss;
  const GradCheckResult result = check_input_gradients(net, input, target, loss);
  EXPECT_LT(result.max_rel_error, kRelTol) << c.name << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(AllLayerKinds, GradCheckSweep,
                         ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 3)));

TEST(GradCheck, BatchNormGradientsThroughBatchStatistics) {
  // BatchNorm couples samples; check its analytic backward by perturbing
  // parameters with a fixed one-sample batch (batch stats degenerate but
  // well-defined with eps).
  Rng rng(17);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(3, 4);
  d->init_he(rng);
  net.add(std::move(d));
  net.add(std::make_unique<nn::BatchNorm>(4, /*eps=*/0.1));
  auto out = std::make_unique<nn::Dense>(4, 2);
  out->init_he(rng);
  net.add(std::move(out));

  const Tensor input = Tensor::randn(Shape{3}, rng, 1.0);
  const Tensor target = Tensor::randn(Shape{2}, rng, 1.0);
  const MseLoss loss;
  const GradCheckResult result = check_parameter_gradients(net, input, target, loss);
  EXPECT_LT(result.max_rel_error, 5e-4);
}

TEST(GradCheck, BceWithLogitsGradient) {
  Rng rng(23);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(4, 1);
  d->init_he(rng);
  net.add(std::move(d));
  const Tensor input = Tensor::randn(Shape{4}, rng, 1.0);
  const BceWithLogitsLoss loss;
  for (const double label : {0.0, 1.0}) {
    const GradCheckResult result =
        check_parameter_gradients(net, input, Tensor::vector1d({label}), loss);
    EXPECT_LT(result.max_rel_error, kRelTol) << "label " << label;
  }
}

TEST(Loss, BceNumericallyStableAtExtremeLogits) {
  const BceWithLogitsLoss loss;
  const double big = loss.value(Tensor::vector1d({500.0}), Tensor::vector1d({0.0}));
  EXPECT_NEAR(big, 500.0, 1e-9);
  const double small = loss.value(Tensor::vector1d({500.0}), Tensor::vector1d({1.0}));
  EXPECT_NEAR(small, 0.0, 1e-9);
  EXPECT_TRUE(std::isfinite(loss.value(Tensor::vector1d({-800.0}), Tensor::vector1d({1.0}))));
}

TEST(Loss, MseMatchesHandComputation) {
  const MseLoss loss;
  const double v =
      loss.value(Tensor::vector1d({1.0, 2.0}), Tensor::vector1d({0.0, 4.0}));
  EXPECT_DOUBLE_EQ(v, (1.0 + 4.0) / 2.0);
}

}  // namespace
}  // namespace dpv::train
