// Runtime monitor tests: hull construction (Fig. 1 semantics), adjacent
// difference bounds (Sec. V), containment invariants, violation reports
// and serialization round-trips.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "monitor/activation_recorder.hpp"
#include "monitor/box_monitor.hpp"
#include "monitor/diff_monitor.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"

namespace dpv::monitor {
namespace {

TEST(BoxMonitor, ReproducesFigureOneExample) {
  // Fig. 1: visited values {0, 0.1, -0.1, ..., 0.6} -> abstraction
  // [-0.1, 0.6].
  const std::vector<Tensor> activations = {
      Tensor::vector1d({0.0}), Tensor::vector1d({0.1}), Tensor::vector1d({-0.1}),
      Tensor::vector1d({0.6})};
  const BoxMonitor mon = BoxMonitor::from_activations(activations);
  EXPECT_DOUBLE_EQ(mon.box()[0].lo, -0.1);
  EXPECT_DOUBLE_EQ(mon.box()[0].hi, 0.6);
  EXPECT_TRUE(mon.contains(Tensor::vector1d({0.3})));
  EXPECT_FALSE(mon.contains(Tensor::vector1d({0.7})));
}

TEST(BoxMonitor, EveryTrainingActivationIsContained) {
  Rng rng(3);
  std::vector<Tensor> activations;
  for (int i = 0; i < 100; ++i) activations.push_back(Tensor::randn(Shape{6}, rng, 2.0));
  const BoxMonitor mon = BoxMonitor::from_activations(activations);
  for (const Tensor& a : activations) EXPECT_TRUE(mon.contains(a));
}

TEST(BoxMonitor, MarginEnlargesHull) {
  const std::vector<Tensor> activations = {Tensor::vector1d({0.0, 1.0}),
                                           Tensor::vector1d({1.0, 3.0})};
  const BoxMonitor tight = BoxMonitor::from_activations(activations, 0.0);
  const BoxMonitor wide = BoxMonitor::from_activations(activations, 0.1);
  EXPECT_FALSE(tight.contains(Tensor::vector1d({1.05, 2.0})));
  EXPECT_TRUE(wide.contains(Tensor::vector1d({1.05, 2.0})));
  EXPECT_DOUBLE_EQ(wide.box()[1].hi, 3.2);
}

TEST(BoxMonitor, ViolationsPinpointNeurons) {
  const BoxMonitor mon(absint::Box{absint::Interval(0, 1), absint::Interval(0, 1),
                                   absint::Interval(-1, 0)});
  const auto violations = mon.violations(Tensor::vector1d({0.5, 2.0, -2.0}));
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0], 1u);
  EXPECT_EQ(violations[1], 2u);
}

TEST(BoxMonitor, SerializationRoundTrip) {
  Rng rng(5);
  std::vector<Tensor> activations;
  for (int i = 0; i < 20; ++i) activations.push_back(Tensor::randn(Shape{4}, rng, 1.0));
  const BoxMonitor mon = BoxMonitor::from_activations(activations, 0.05);
  std::stringstream buffer;
  mon.save(buffer);
  const BoxMonitor restored = BoxMonitor::load(buffer);
  ASSERT_EQ(restored.dimensions(), mon.dimensions());
  for (std::size_t i = 0; i < mon.dimensions(); ++i) {
    EXPECT_DOUBLE_EQ(restored.box()[i].lo, mon.box()[i].lo);
    EXPECT_DOUBLE_EQ(restored.box()[i].hi, mon.box()[i].hi);
  }
}

TEST(BoxMonitor, RejectsEmptyInput) {
  EXPECT_THROW(BoxMonitor::from_activations({}), ContractViolation);
}

TEST(DiffMonitor, RecordsAdjacentDifferenceHull) {
  // Activations chosen so values alone admit a point the differences
  // exclude: both coordinates in [0,1], but diff always exactly +-1.
  const std::vector<Tensor> activations = {Tensor::vector1d({0.0, 1.0}),
                                           Tensor::vector1d({1.0, 0.0})};
  const DiffMonitor mon = DiffMonitor::from_activations(activations);
  ASSERT_EQ(mon.diff_bounds().size(), 1u);
  EXPECT_DOUBLE_EQ(mon.diff_bounds()[0].lo, -1.0);
  EXPECT_DOUBLE_EQ(mon.diff_bounds()[0].hi, 1.0);
  EXPECT_TRUE(mon.contains(Tensor::vector1d({0.5, 0.5})));
  // (0, 1) has diff +1 (allowed); (0.9, 0.1) diff -0.8 allowed; all box
  // points happen to be allowed here, so tighten the check with a third
  // monitor built from constant-diff data:
  const std::vector<Tensor> ramp = {Tensor::vector1d({0.0, 0.5}),
                                    Tensor::vector1d({0.5, 1.0})};
  const DiffMonitor ramp_mon = DiffMonitor::from_activations(ramp);
  EXPECT_DOUBLE_EQ(ramp_mon.diff_bounds()[0].lo, 0.5);
  // 0.75 - 0.25 is exactly 0.5 in binary floating point.
  EXPECT_TRUE(ramp_mon.contains(Tensor::vector1d({0.25, 0.75})));
  // In the box but violating the diff constraint:
  EXPECT_FALSE(ramp_mon.contains(Tensor::vector1d({0.5, 0.5})));
}

TEST(DiffMonitor, StrictlyStrongerThanBox) {
  Rng rng(7);
  std::vector<Tensor> activations;
  for (int i = 0; i < 50; ++i) {
    // Strongly correlated neighbours: n1 = n0 + ~0.5
    const double base = rng.uniform(-1.0, 1.0);
    activations.push_back(Tensor::vector1d({base, base + rng.uniform(0.45, 0.55)}));
  }
  const DiffMonitor mon = DiffMonitor::from_activations(activations);
  for (const Tensor& a : activations) EXPECT_TRUE(mon.contains(a));
  // Box corners that break the correlation must be rejected.
  const double lo0 = mon.box()[0].lo;
  const double hi1 = mon.box()[1].hi;
  EXPECT_TRUE(mon.box_monitor().contains(Tensor::vector1d({lo0, hi1})));
  EXPECT_FALSE(mon.contains(Tensor::vector1d({lo0, hi1})));
}

TEST(DiffMonitor, ViolationDescriptionsNameConstraints) {
  const std::vector<Tensor> ramp = {Tensor::vector1d({0.0, 0.5}),
                                    Tensor::vector1d({0.5, 1.0})};
  const DiffMonitor mon = DiffMonitor::from_activations(ramp);
  // (0.5, 0.4): n1 = 0.4 breaks its box AND the diff breaks its bound;
  // both constraint families must be named.
  const auto violations = mon.violations(Tensor::vector1d({0.5, 0.4}));
  ASSERT_EQ(violations.size(), 2u);
  bool saw_box = false, saw_diff = false;
  for (const std::string& v : violations) {
    if (v.find("n1 - n0") != std::string::npos) saw_diff = true;
    else if (v.find("n1") != std::string::npos) saw_box = true;
  }
  EXPECT_TRUE(saw_box);
  EXPECT_TRUE(saw_diff);
}

TEST(DiffMonitor, SerializationRoundTrip) {
  Rng rng(11);
  std::vector<Tensor> activations;
  for (int i = 0; i < 30; ++i) activations.push_back(Tensor::randn(Shape{5}, rng, 1.0));
  const DiffMonitor mon = DiffMonitor::from_activations(activations, 0.02);
  std::stringstream buffer;
  mon.save(buffer);
  const DiffMonitor restored = DiffMonitor::load(buffer);
  ASSERT_EQ(restored.dimensions(), mon.dimensions());
  ASSERT_EQ(restored.diff_bounds().size(), mon.diff_bounds().size());
  for (std::size_t i = 0; i < mon.diff_bounds().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.diff_bounds()[i].lo, mon.diff_bounds()[i].lo);
    EXPECT_DOUBLE_EQ(restored.diff_bounds()[i].hi, mon.diff_bounds()[i].hi);
  }
}

TEST(DiffMonitor, ScalarActivationsHaveNoDiffBounds) {
  const DiffMonitor mon = DiffMonitor::from_activations({Tensor::vector1d({1.0})});
  EXPECT_TRUE(mon.diff_bounds().empty());
  EXPECT_TRUE(mon.contains(Tensor::vector1d({1.0})));
}

TEST(ActivationRecorder, MatchesForwardPrefix) {
  Rng rng(13);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(3, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 2);
  d2->init_he(rng);
  net.add(std::move(d2));

  std::vector<Tensor> inputs;
  for (int i = 0; i < 10; ++i) inputs.push_back(Tensor::randn(Shape{3}, rng, 1.0));
  const std::vector<Tensor> recorded = record_activations(net, 2, inputs);
  ASSERT_EQ(recorded.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor expected = net.forward_prefix(inputs[i], 2);
    for (std::size_t j = 0; j < expected.numel(); ++j)
      EXPECT_DOUBLE_EQ(recorded[i][j], expected[j]);
  }
}

// Property sweep: monitors built from recorded activations always accept
// the data they were built from, for varying widths and margins.
class MonitorInvariantSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MonitorInvariantSweep, TrainingDataAlwaysAccepted) {
  const auto [seed, margin] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 1);
  const std::size_t width = static_cast<std::size_t>(rng.uniform_int(1, 12));
  std::vector<Tensor> activations;
  for (int i = 0; i < 40; ++i)
    activations.push_back(Tensor::randn(Shape{width}, rng, rng.uniform(0.1, 3.0)));
  const DiffMonitor mon = DiffMonitor::from_activations(activations, margin);
  for (const Tensor& a : activations) EXPECT_TRUE(mon.contains(a));
}

INSTANTIATE_TEST_SUITE_P(Margins, MonitorInvariantSweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(0.0, 0.05, 0.2)));

}  // namespace
}  // namespace dpv::monitor
