// Abstract interpretation tests: interval arithmetic identities, box
// propagation soundness (random networks, sampled inputs must stay inside
// propagated bounds), zonotope soundness and its tightness advantage over
// boxes on correlated affine chains.
#include <gtest/gtest.h>

#include <memory>

#include "absint/box_domain.hpp"
#include "absint/zonotope.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"

namespace dpv::absint {
namespace {

TEST(Interval, ArithmeticIdentities) {
  const Interval a(-1.0, 2.0);
  const Interval b(0.5, 1.5);
  EXPECT_DOUBLE_EQ((a + b).lo, -0.5);
  EXPECT_DOUBLE_EQ((a + b).hi, 3.5);
  EXPECT_DOUBLE_EQ((a - b).lo, -2.5);
  EXPECT_DOUBLE_EQ((a - b).hi, 1.5);
  EXPECT_DOUBLE_EQ(scale(a, -2.0).lo, -4.0);
  EXPECT_DOUBLE_EQ(scale(a, -2.0).hi, 2.0);
  EXPECT_DOUBLE_EQ(relu(a).lo, 0.0);
  EXPECT_DOUBLE_EQ(relu(a).hi, 2.0);
  EXPECT_DOUBLE_EQ(relu(Interval(-3.0, -1.0)).hi, 0.0);
  EXPECT_DOUBLE_EQ(shift(a, 1.0).lo, 0.0);
}

TEST(Interval, HullAndContainment) {
  const Interval a(0.0, 1.0);
  const Interval b(2.0, 3.0);
  const Interval h = a.hull(b);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 3.0);
  EXPECT_TRUE(h.contains(1.5));
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersects(Interval(0.5, 2.0)));
}

TEST(Interval, InvalidBoundsThrow) {
  EXPECT_THROW(Interval(1.0, 0.0), ContractViolation);
}

nn::Network make_random_mixed_net(Rng& rng) {
  nn::Network net;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 4, 2, 3, 1, 1);
  conv->init_he(rng);
  net.add(std::move(conv));
  net.add(std::make_unique<nn::ReLU>(Shape{2, 4, 4}));
  net.add(std::make_unique<nn::MaxPool2D>(2, 4, 4, 2));
  net.add(std::make_unique<nn::AvgPool2D>(2, 2, 2, 2));
  net.add(std::make_unique<nn::Flatten>(Shape{2, 1, 1}));
  auto d1 = std::make_unique<nn::Dense>(2, 5);
  d1->init_he(rng);
  net.add(std::move(d1));
  auto bn = std::make_unique<nn::BatchNorm>(5);
  bn->set_statistics(Tensor::randn(Shape{5}, rng, 0.3),
                     Tensor::vector1d({1.0, 0.5, 2.0, 1.5, 0.8}));
  bn->set_affine(Tensor::randn(Shape{5}, rng, 0.5), Tensor::randn(Shape{5}, rng, 0.5));
  net.add(std::move(bn));
  net.add(std::make_unique<nn::Tanh>(Shape{5}));
  auto d2 = std::make_unique<nn::Dense>(5, 3);
  d2->init_he(rng);
  net.add(std::move(d2));
  net.add(std::make_unique<nn::Sigmoid>(Shape{3}));
  return net;
}

class BoxSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoxSoundnessSweep, SampledExecutionsStayInsidePropagatedBoxes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 13);
  nn::Network net = make_random_mixed_net(rng);
  const Box input_box = uniform_box(16, 0.0, 1.0);
  const std::vector<Box> trace = propagate_box_trace(net, input_box, 0, net.layer_count());

  for (int sample = 0; sample < 30; ++sample) {
    Tensor x(Shape{1, 4, 4});
    for (std::size_t i = 0; i < 16; ++i) x[i] = rng.uniform(0.0, 1.0);
    const std::vector<Tensor> outs = net.all_layer_outputs(x);
    ASSERT_EQ(outs.size(), trace.size());
    for (std::size_t layer = 0; layer < outs.size(); ++layer) {
      const Box& box = trace[layer];
      ASSERT_EQ(box.size(), outs[layer].numel());
      for (std::size_t i = 0; i < box.size(); ++i) {
        EXPECT_GE(outs[layer][i], box[i].lo - 1e-9)
            << "seed " << GetParam() << " layer " << layer << " neuron " << i;
        EXPECT_LE(outs[layer][i], box[i].hi + 1e-9)
            << "seed " << GetParam() << " layer " << layer << " neuron " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNets, BoxSoundnessSweep, ::testing::Range(0, 10));

TEST(BoxDomain, DegenerateBoxPropagatesExactlyThroughAffine) {
  Rng rng(3);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(3, 2);
  d->init_he(rng);
  net.add(std::move(d));
  const Tensor x = Tensor::vector1d({0.3, -0.4, 0.9});
  Box point_box;
  for (std::size_t i = 0; i < 3; ++i) point_box.emplace_back(x[i], x[i]);
  const Box out = propagate_box_range(net, point_box, 0, 1);
  const Tensor y = net.forward(x);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(out[i].lo, y[i], 1e-12);
    EXPECT_NEAR(out[i].hi, y[i], 1e-12);
  }
}

TEST(BoxDomain, DimensionMismatchThrows) {
  Rng rng(1);
  nn::Network net;
  auto d = std::make_unique<nn::Dense>(3, 2);
  d->init_he(rng);
  net.add(std::move(d));
  EXPECT_THROW(propagate_box_range(net, uniform_box(4, 0, 1), 0, 1), ContractViolation);
}

nn::Network make_random_tail(Rng& rng, std::size_t in_n, std::size_t hidden,
                             std::size_t out_n) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{hidden}));
  auto d2 = std::make_unique<nn::Dense>(hidden, out_n);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

class ZonotopeSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZonotopeSoundnessSweep, SampledOutputsInsideConcretization) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 83 + 2);
  nn::Network net = make_random_tail(rng, 4, 6, 3);
  const Box input_box = uniform_box(4, -0.5, 1.5);
  const Zonotope z = propagate_zonotope_range(net, Zonotope::from_box(input_box), 0,
                                              net.layer_count());
  const Box out_box = z.to_box();
  for (int sample = 0; sample < 50; ++sample) {
    Tensor x(Shape{4});
    for (std::size_t i = 0; i < 4; ++i) x[i] = rng.uniform(-0.5, 1.5);
    const Tensor y = net.forward(x);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(y[i], out_box[i].lo - 1e-9) << "seed " << GetParam();
      EXPECT_LE(y[i], out_box[i].hi + 1e-9) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTails, ZonotopeSoundnessSweep, ::testing::Range(0, 10));

TEST(Zonotope, ExactThroughAffineChains) {
  // Boxes lose the correlation y = x - x = 0; zonotopes keep it.
  Rng rng(5);
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(1, 2);
  d1->set_parameters(Tensor(Shape{2, 1}, {1.0, 1.0}), Tensor::vector1d({0.0, 0.0}));
  net.add(std::move(d1));
  auto d2 = std::make_unique<nn::Dense>(2, 1);
  d2->set_parameters(Tensor(Shape{1, 2}, {1.0, -1.0}), Tensor::vector1d({0.0}));
  net.add(std::move(d2));

  const Box input_box = uniform_box(1, -1.0, 1.0);
  const Box via_box = propagate_box_range(net, input_box, 0, net.layer_count());
  const Zonotope via_zono = propagate_zonotope_range(net, Zonotope::from_box(input_box), 0,
                                                     net.layer_count());
  EXPECT_NEAR(via_zono.to_box()[0].width(), 0.0, 1e-12);
  EXPECT_NEAR(via_box[0].width(), 4.0, 1e-12);  // box forgets x-x = 0
}

TEST(Zonotope, NeverLooserThanBoxOnAffineChains) {
  // Through affine layers zonotopes are exact, so they can only be
  // tighter than boxes (which forget inter-neuron correlation). Note the
  // guarantee does NOT extend to unstable ReLUs: the DeepZ transformer
  // trades per-dimension tightness for retained correlation.
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    nn::Network net;
    auto d1 = std::make_unique<nn::Dense>(5, 8);
    d1->init_he(rng);
    net.add(std::move(d1));
    auto d2 = std::make_unique<nn::Dense>(8, 3);
    d2->init_he(rng);
    net.add(std::move(d2));
    const Box input_box = uniform_box(5, -1.0, 1.0);
    const Box via_box = propagate_box_range(net, input_box, 0, net.layer_count());
    const Zonotope z = propagate_zonotope_range(net, Zonotope::from_box(input_box), 0,
                                                net.layer_count());
    EXPECT_LE(z.total_width(), box_total_width(via_box) + 1e-9) << "trial " << trial;
  }
}

TEST(Zonotope, StableReluNetworksStayTighterThanBox) {
  // Positive-biased tails keep every ReLU provably active, so the
  // zonotope remains exact end to end while the box accumulates slack.
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    nn::Network net;
    auto d1 = std::make_unique<nn::Dense>(4, 6);
    d1->init_he(rng);
    // Shift biases so pre-activations stay positive on the input box.
    {
      Tensor w = d1->weight();
      Tensor b = d1->bias();
      for (std::size_t i = 0; i < b.numel(); ++i) b[i] = 5.0;
      d1->set_parameters(std::move(w), std::move(b));
    }
    net.add(std::move(d1));
    net.add(std::make_unique<nn::ReLU>(Shape{6}));
    auto d2 = std::make_unique<nn::Dense>(6, 2);
    d2->init_he(rng);
    net.add(std::move(d2));
    const Box input_box = uniform_box(4, -0.5, 0.5);
    const Box via_box = propagate_box_range(net, input_box, 0, net.layer_count());
    const Zonotope z = propagate_zonotope_range(net, Zonotope::from_box(input_box), 0,
                                                net.layer_count());
    EXPECT_LE(z.total_width(), box_total_width(via_box) + 1e-9) << "trial " << trial;
  }
}

TEST(Zonotope, StableReluDimensionsAreExact) {
  const Box box{Interval(1.0, 2.0), Interval(-3.0, -1.0)};
  const Zonotope z = Zonotope::from_box(box).relu();
  const Box out = z.to_box();
  EXPECT_NEAR(out[0].lo, 1.0, 1e-12);
  EXPECT_NEAR(out[0].hi, 2.0, 1e-12);
  EXPECT_NEAR(out[1].lo, 0.0, 1e-12);
  EXPECT_NEAR(out[1].hi, 0.0, 1e-12);
}

TEST(Zonotope, UnsupportedLayerKindThrows) {
  nn::Network net;
  net.add(std::make_unique<nn::MaxPool2D>(1, 2, 2, 2));
  EXPECT_FALSE(zonotope_supported(net, 0, 1));
  EXPECT_THROW(
      propagate_zonotope_range(net, Zonotope::from_box(uniform_box(4, 0, 1)), 0, 1),
      ContractViolation);
}

nn::Network make_leaky_tail(Rng& rng, std::size_t in_n, std::size_t hidden,
                            std::size_t out_n, double alpha) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(in_n, hidden);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{hidden}, alpha));
  auto d2 = std::make_unique<nn::Dense>(hidden, hidden);
  d2->init_he(rng);
  net.add(std::move(d2));
  net.add(std::make_unique<nn::LeakyReLU>(Shape{hidden}, alpha));
  auto d3 = std::make_unique<nn::Dense>(hidden, out_n);
  d3->init_he(rng);
  net.add(std::move(d3));
  return net;
}

class LeakyZonotopeSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeakyZonotopeSoundnessSweep, SampledOutputsInsideConcretization) {
  // The LeakyReLU chord transformer is new in the domain: random leaky
  // tails, sampled concrete outputs must stay inside both the range
  // concretization and every trace entry's box.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  nn::Network net = make_leaky_tail(rng, 4, 6, 3, 0.1);
  ASSERT_TRUE(zonotope_supported(net, 0, net.layer_count()));
  const Box input_box = uniform_box(4, -0.8, 1.2);
  const Zonotope z = propagate_zonotope_range(net, Zonotope::from_box(input_box), 0,
                                              net.layer_count());
  const Box out_box = z.to_box();
  const std::vector<Box> trace =
      propagate_zonotope_trace(net, input_box, 0, net.layer_count());
  const Box& trace_out = trace.back();
  for (int sample = 0; sample < 50; ++sample) {
    Tensor x(Shape{4});
    for (std::size_t i = 0; i < 4; ++i) x[i] = rng.uniform(-0.8, 1.2);
    const Tensor y = net.forward(x);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(y[i], out_box[i].lo - 1e-9) << "seed " << GetParam();
      EXPECT_LE(y[i], out_box[i].hi + 1e-9) << "seed " << GetParam();
      EXPECT_GE(y[i], trace_out[i].lo - 1e-9) << "seed " << GetParam();
      EXPECT_LE(y[i], trace_out[i].hi + 1e-9) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLeakyTails, LeakyZonotopeSoundnessSweep,
                         ::testing::Range(0, 10));

TEST(Zonotope, LeakyStableDimensionsAreExact) {
  // [1, 2] sits on the identity piece, [-3, -1] on the alpha piece —
  // both transformed exactly, no fresh noise.
  const Box box{Interval(1.0, 2.0), Interval(-3.0, -1.0)};
  const Zonotope z = Zonotope::from_box(box).leaky_relu(0.25);
  EXPECT_EQ(z.generator_count(), 2u);  // no fresh symbols added
  const Box out = z.to_box();
  EXPECT_NEAR(out[0].lo, 1.0, 1e-12);
  EXPECT_NEAR(out[0].hi, 2.0, 1e-12);
  EXPECT_NEAR(out[1].lo, -0.75, 1e-12);
  EXPECT_NEAR(out[1].hi, -0.25, 1e-12);
}

TEST(Zonotope, LeakyReluAtAlphaZeroMatchesReluTransformer) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    Box box(3);
    for (std::size_t i = 0; i < 3; ++i) {
      const double a = rng.uniform(-2.0, 2.0);
      const double b = rng.uniform(-2.0, 2.0);
      box[i] = Interval(std::min(a, b), std::max(a, b));
    }
    const Zonotope base = Zonotope::from_box(box);
    const Box via_relu = base.relu().to_box();
    const Box via_leaky = base.leaky_relu(0.0).to_box();
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(via_relu[i].lo, via_leaky[i].lo, 1e-12) << "trial " << trial;
      EXPECT_NEAR(via_relu[i].hi, via_leaky[i].hi, 1e-12) << "trial " << trial;
    }
  }
}

TEST(Zonotope, TraceClampFeedbackNeverLoosensBounds) {
  // The trace feeds its interval-intersected boxes back into the chord
  // choice: every entry must be at least as tight as plain interval
  // propagation and than the unclamped zonotope concretization.
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    nn::Network net = make_leaky_tail(rng, 4, 6, 2, 0.05);
    const Box input_box = uniform_box(4, -1.0, 1.0);
    const std::vector<Box> trace =
        propagate_zonotope_trace(net, input_box, 0, net.layer_count());
    Box interval_box = input_box;
    for (std::size_t i = 0; i < net.layer_count(); ++i) {
      interval_box = propagate_box(net.layer(i), interval_box);
      EXPECT_LE(box_total_width(trace[i]), box_total_width(interval_box) + 1e-9)
          << "trial " << trial << " layer " << i;
    }
    const Zonotope plain = propagate_zonotope_range(
        net, Zonotope::from_box(input_box), 0, net.layer_count());
    EXPECT_LE(box_total_width(trace.back()), plain.total_width() + 1e-9)
        << "trial " << trial;
  }
}

TEST(BoxHelpers, ContainsAndWidth) {
  const Box box{Interval(0.0, 1.0), Interval(-1.0, 1.0)};
  EXPECT_TRUE(box_contains(box, {0.5, 0.0}));
  EXPECT_FALSE(box_contains(box, {1.5, 0.0}));
  EXPECT_DOUBLE_EQ(box_total_width(box), 3.0);
}

}  // namespace
}  // namespace dpv::absint
