// Core workflow tests: characterizer training, Table I statistics,
// assume-guarantee verdict semantics (conditional vs unconditional), and
// the end-to-end SafetyWorkflow on a small trained perception model.
#include <gtest/gtest.h>

#include <memory>

#include "core/assume_guarantee.hpp"
#include "core/characterizer.hpp"
#include "core/statistical.hpp"
#include "core/workflow.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/dataset_gen.hpp"
#include "data/perception_model.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace dpv::core {
namespace {

/// Small perception-style network: dense(2->4) relu | dense(4->1).
/// Feature layer (attach = 2) is the relu output.
nn::Network make_toy_perception(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(2, 4);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{4}));
  auto d2 = std::make_unique<nn::Dense>(4, 1);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

/// Dataset where the label is a simple function of the input (x0 > 0):
/// linearly separable in input space, hence separable in feature space of
/// a random (injective enough) first layer.
train::Dataset make_separable_images(Rng& rng, std::size_t count) {
  train::Dataset data;
  for (std::size_t i = 0; i < count; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    data.add(Tensor::vector1d({x0, x1}), Tensor::vector1d({x0 > 0.0 ? 1.0 : 0.0}));
  }
  return data;
}

TEST(Characterizer, LearnsSeparableProperty) {
  Rng rng(3);
  const nn::Network perception = make_toy_perception(rng);
  const train::Dataset train_set = make_separable_images(rng, 300);
  const train::Dataset val_set = make_separable_images(rng, 100);

  CharacterizerConfig config;
  config.trainer.epochs = 120;
  const TrainedCharacterizer h =
      train_characterizer(perception, 2, train_set, val_set, config);
  EXPECT_GE(h.train_confusion.accuracy(), 0.97);
  EXPECT_GE(h.separability(), 0.9);
  EXPECT_EQ(h.network.input_shape().numel(), 4u);
  EXPECT_EQ(h.network.output_shape().numel(), 1u);
}

TEST(Characterizer, RandomLabelsAreNotSeparable) {
  // The information-bottleneck phenomenon in miniature: labels
  // independent of the input cannot be learned; accuracy hovers at the
  // base rate.
  Rng rng(5);
  const nn::Network perception = make_toy_perception(rng);
  train::Dataset train_set, val_set;
  Rng label_rng(6);
  for (int i = 0; i < 300; ++i) {
    const Tensor x = Tensor::randn(Shape{2}, rng, 1.0);
    const double label = label_rng.bernoulli(0.5) ? 1.0 : 0.0;
    (i < 200 ? train_set : val_set).add(x, Tensor::vector1d({label}));
  }
  CharacterizerConfig config;
  config.trainer.epochs = 60;
  const TrainedCharacterizer h =
      train_characterizer(perception, 2, train_set, val_set, config);
  EXPECT_LT(h.separability(), 0.75);
}

TEST(Characterizer, FeatureDatasetMatchesPrefix) {
  Rng rng(7);
  const nn::Network perception = make_toy_perception(rng);
  const train::Dataset images = make_separable_images(rng, 10);
  const train::Dataset features = to_feature_dataset(perception, 2, images);
  ASSERT_EQ(features.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    const Tensor expected = perception.forward_prefix(images[i].input, 2);
    for (std::size_t j = 0; j < expected.numel(); ++j)
      EXPECT_DOUBLE_EQ(features[i].input[j], expected[j]);
    EXPECT_DOUBLE_EQ(features[i].target[0], images[i].target[0]);
  }
}

TEST(Statistical, TableOneCellsSumToOne) {
  Rng rng(9);
  const nn::Network perception = make_toy_perception(rng);
  const train::Dataset train_set = make_separable_images(rng, 200);
  const train::Dataset val_set = make_separable_images(rng, 150);
  CharacterizerConfig config;
  config.trainer.epochs = 60;
  const TrainedCharacterizer h =
      train_characterizer(perception, 2, train_set, val_set, config);
  const TableOneEstimate t = estimate_table_one(perception, 2, h.network, val_set);
  EXPECT_EQ(t.samples(), 150u);
  EXPECT_NEAR(t.alpha() + t.beta() + t.gamma() + t.delta(), 1.0, 1e-12);
  EXPECT_NEAR(t.guarantee(), 1.0 - t.gamma(), 1e-12);
}

TEST(Statistical, WilsonIntervalProperties) {
  TableOneEstimate t;
  t.counts = {.tp = 45, .fp = 5, .fn = 5, .tn = 45};  // gamma = 0.05
  const ProbabilityInterval ci = t.gamma_interval(1.96);
  EXPECT_LE(ci.lo, t.gamma());
  EXPECT_GE(ci.hi, t.gamma());
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 0.2);
  EXPECT_LE(t.guarantee_lower_bound(), t.guarantee());
  // Wider at higher confidence.
  const ProbabilityInterval wide = t.gamma_interval(2.58);
  EXPECT_LE(wide.lo, ci.lo);
  EXPECT_GE(wide.hi, ci.hi);
}

TEST(Statistical, ZeroGammaStillConservative) {
  TableOneEstimate t;
  t.counts = {.tp = 50, .fp = 0, .fn = 0, .tn = 50};
  EXPECT_DOUBLE_EQ(t.guarantee(), 1.0);
  // Wilson upper bound stays below 1 but above 0: no false certainty.
  EXPECT_GT(t.gamma_interval().hi, 0.0);
  EXPECT_LT(t.guarantee_lower_bound(), 1.0);
  EXPECT_GT(t.guarantee_lower_bound(), 0.9);
}

TEST(Statistical, FormatMentionsGuarantee) {
  TableOneEstimate t;
  t.counts = {.tp = 40, .fp = 10, .fn = 2, .tn = 48};
  const std::string text = t.format();
  EXPECT_NE(text.find("1 - gamma"), std::string::npos);
  EXPECT_NE(text.find("In_phi"), std::string::npos);
}

TEST(AssumeGuarantee, ConditionalVsUnconditionalVerdicts) {
  Rng rng(11);
  const nn::Network perception = make_toy_perception(rng);
  // ODD inputs concentrated in a small region.
  std::vector<Tensor> odd_inputs;
  for (int i = 0; i < 100; ++i)
    odd_inputs.push_back(Tensor::vector1d({rng.uniform(0.1, 0.3), rng.uniform(-0.1, 0.1)}));

  // Find an unreachable output level from the monitored activations.
  double max_out = -1e100;
  for (const Tensor& x : odd_inputs) max_out = std::max(max_out, perception.forward(x)[0]);
  verify::RiskSpec risk("beyond-odd");
  risk.output_at_least(0, 1, max_out + 10.0);

  AssumeGuaranteeConfig monitor_cfg;
  monitor_cfg.bounds = BoundsSource::kMonitorBoxDiff;
  const SafetyCase via_monitor = AssumeGuaranteeVerifier(monitor_cfg)
                                     .verify(perception, 2, nullptr, risk, odd_inputs, {});
  EXPECT_EQ(via_monitor.verdict, SafetyVerdict::kSafeConditional);
  ASSERT_TRUE(via_monitor.deployed_monitor.has_value());
  // The monitor accepts the ODD data it was built from.
  for (const Tensor& x : odd_inputs)
    EXPECT_TRUE(via_monitor.deployed_monitor->contains(perception.forward_prefix(x, 2)));

  AssumeGuaranteeConfig static_cfg;
  static_cfg.bounds = BoundsSource::kStaticAnalysis;
  const SafetyCase via_static =
      AssumeGuaranteeVerifier(static_cfg)
          .verify(perception, 2, nullptr, risk, {},
                  absint::uniform_box(2, -1.0, 1.0));
  // Static analysis may or may not prove this (bounds are coarser), but a
  // SAFE answer must be the unconditional kind and UNSAFE must carry a
  // validated counterexample.
  if (via_static.verdict == SafetyVerdict::kSafeUnconditional) {
    EXPECT_FALSE(via_static.deployed_monitor.has_value());
  } else {
    EXPECT_EQ(via_static.verdict, SafetyVerdict::kUnsafe);
    EXPECT_TRUE(via_static.verification.counterexample_validated);
  }
}

TEST(AssumeGuarantee, UnsafeWhenRiskReachableInOdd) {
  Rng rng(13);
  const nn::Network perception = make_toy_perception(rng);
  std::vector<Tensor> odd_inputs;
  for (int i = 0; i < 50; ++i)
    odd_inputs.push_back(Tensor::randn(Shape{2}, rng, 1.0));
  double max_out = -1e100;
  for (const Tensor& x : odd_inputs) max_out = std::max(max_out, perception.forward(x)[0]);
  verify::RiskSpec risk("reachable");
  risk.output_at_least(0, 1, max_out - 0.1);  // achieved by the data itself
  const SafetyCase sc =
      AssumeGuaranteeVerifier().verify(perception, 2, nullptr, risk, odd_inputs, {});
  EXPECT_EQ(sc.verdict, SafetyVerdict::kUnsafe);
  EXPECT_TRUE(sc.verification.counterexample_validated);
}

TEST(AssumeGuarantee, MonitorRequiresOddInputs) {
  Rng rng(15);
  const nn::Network perception = make_toy_perception(rng);
  verify::RiskSpec risk;
  risk.output_at_least(0, 1, 0.0);
  EXPECT_THROW(AssumeGuaranteeVerifier().verify(perception, 2, nullptr, risk, {}, {}),
               ContractViolation);
}

TEST(Workflow, EndToEndOnTrainedRoadModel) {
  // Small but complete: train the perception CNN on synthetic road data,
  // then run the full workflow for the paper's running property/risk.
  Rng rng(17);
  data::PerceptionConfig pconfig;
  pconfig.render.width = 16;
  pconfig.render.height = 8;
  pconfig.conv1_channels = 2;
  pconfig.conv2_channels = 4;
  pconfig.embedding = 12;
  pconfig.features = 8;
  pconfig.tail_hidden = 8;
  data::PerceptionModel model = data::make_perception_network(pconfig, rng);

  data::RoadDatasetConfig dconfig;
  dconfig.count = 220;
  dconfig.seed = 5;
  dconfig.render = pconfig.render;
  const std::vector<data::RoadSample> samples = data::generate_road_samples(dconfig);
  const train::Dataset regression = data::to_regression_dataset(samples);

  train::MseLoss loss;
  train::Adam optimizer(0.01);
  train::Trainer trainer({.epochs = 6, .batch_size = 16, .shuffle_seed = 1});
  trainer.fit(model.network, regression, loss, optimizer);

  const train::Dataset property =
      data::to_property_dataset(samples, data::InputProperty::kBendRightStrong);
  Rng split_rng(2);
  const auto [prop_train, prop_val] = property.split(0.7, split_rng);

  verify::RiskSpec risk("steer-far-left");
  risk.output_at_most(1, 2, -0.5);

  WorkflowConfig wconfig;
  wconfig.characterizer.trainer.epochs = 40;
  const SafetyWorkflow workflow(model.network, model.attach_layer);
  const WorkflowReport report =
      workflow.run("road-bends-right-strong", prop_train, prop_val, risk, wconfig);

  // Mechanics: all report fields populated and internally consistent.
  EXPECT_EQ(report.property_name, "road-bends-right-strong");
  EXPECT_EQ(report.risk_name, "steer-far-left");
  EXPECT_GT(report.characterizer.train_confusion.total(), 0u);
  EXPECT_NEAR(report.table_one.alpha() + report.table_one.beta() + report.table_one.gamma() +
                  report.table_one.delta(),
              1.0, 1e-12);
  EXPECT_NE(report.safety.verdict, SafetyVerdict::kUnknown);
  if (report.safety.verdict == SafetyVerdict::kUnsafe)
    EXPECT_TRUE(report.safety.verification.counterexample_validated);
  else
    EXPECT_TRUE(report.safety.deployed_monitor.has_value());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("verdict"), std::string::npos);
  EXPECT_NE(text.find("Table I"), std::string::npos);
}

TEST(Workflow, RejectsBadAttachLayer) {
  Rng rng(19);
  const nn::Network perception = make_toy_perception(rng);
  EXPECT_THROW(SafetyWorkflow(perception, 99), ContractViolation);
}

}  // namespace
}  // namespace dpv::core
