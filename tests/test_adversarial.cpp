// Adversarial-input search tests: FGSM/PGD budget compliance and loss
// increase, and counterexample concretization (searching the input space
// for an image whose layer-l features approach a MILP counterexample).
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/adversarial.hpp"
#include "train/loss.hpp"

namespace dpv::train {
namespace {

nn::Network make_net(Rng& rng) {
  nn::Network net;
  auto d1 = std::make_unique<nn::Dense>(6, 8);
  d1->init_he(rng);
  net.add(std::move(d1));
  net.add(std::make_unique<nn::ReLU>(Shape{8}));
  auto d2 = std::make_unique<nn::Dense>(8, 2);
  d2->init_he(rng);
  net.add(std::move(d2));
  return net;
}

TEST(Adversarial, FgsmRespectsBudgetAndRange) {
  Rng rng(1);
  nn::Network net = make_net(rng);
  Tensor x(Shape{6});
  for (std::size_t i = 0; i < 6; ++i) x[i] = rng.uniform(0.2, 0.8);
  const Tensor target = Tensor::randn(Shape{2}, rng, 1.0);
  AttackConfig config;
  config.epsilon = 0.05;
  const MseLoss loss;
  const Tensor adv = fgsm_attack(net, x, target, loss, config);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_LE(std::abs(adv[i] - x[i]), config.epsilon + 1e-12);
    EXPECT_GE(adv[i], 0.0);
    EXPECT_LE(adv[i], 1.0);
  }
}

TEST(Adversarial, FgsmIncreasesLoss) {
  Rng rng(2);
  nn::Network net = make_net(rng);
  const MseLoss loss;
  int improved = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Tensor x(Shape{6});
    for (std::size_t i = 0; i < 6; ++i) x[i] = rng.uniform(0.2, 0.8);
    // Offset target so the loss gradient at x is nonzero (at an exact
    // minimum FGSM's gradient sign is all-zero and the attack is a no-op).
    const Tensor target = add(net.forward(x), Tensor::vector1d({0.5, -0.3}));
    AttackConfig config;
    config.epsilon = 0.1;
    const Tensor adv = fgsm_attack(net, x, target, loss, config);
    if (loss.value(net.forward(adv), target) > loss.value(net.forward(x), target))
      ++improved;
  }
  EXPECT_GE(improved, 8);  // a linear step should almost always hurt
}

TEST(Adversarial, PgdAtLeastAsStrongAsFgsm) {
  Rng rng(3);
  nn::Network net = make_net(rng);
  const MseLoss loss;
  int pgd_wins = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Tensor x(Shape{6});
    for (std::size_t i = 0; i < 6; ++i) x[i] = rng.uniform(0.3, 0.7);
    const Tensor target = add(net.forward(x), Tensor::vector1d({0.4, 0.4}));
    AttackConfig config;
    config.epsilon = 0.1;
    config.step_size = 0.02;
    config.steps = 25;
    const Tensor fgsm = fgsm_attack(net, x, target, loss, config);
    const Tensor pgd = pgd_attack(net, x, target, loss, config);
    for (std::size_t i = 0; i < 6; ++i)
      ASSERT_LE(std::abs(pgd[i] - x[i]), config.epsilon + 1e-12);
    if (loss.value(net.forward(pgd), target) >=
        loss.value(net.forward(fgsm), target) - 1e-9)
      ++pgd_wins;
  }
  EXPECT_GE(pgd_wins, 6);
}

TEST(Adversarial, ConcretizationApproachesTargetFeatures) {
  Rng rng(4);
  nn::Network net = make_net(rng);
  // Target: the features of a known reachable input -> the search should
  // get close to zero distance.
  Tensor hidden_seed(Shape{6});
  for (std::size_t i = 0; i < 6; ++i) hidden_seed[i] = rng.uniform(0.1, 0.9);
  const Tensor target_features = net.forward_prefix(hidden_seed, 2);

  Tensor start(Shape{6});
  start.fill(0.5);
  const double initial = max_abs_diff(net.forward_prefix(start, 2), target_features);
  const ConcretizationResult result =
      concretize_activation(net, 2, target_features, start, 400, 0.05);
  EXPECT_LT(result.distance, initial);
  EXPECT_LE(result.distance, initial);  // best-so-far semantics
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(result.input[i], 0.0);
    EXPECT_LE(result.input[i], 1.0);
  }
  EXPECT_GT(result.iterations, 0u);
}

TEST(Adversarial, ConcretizationValidatesLayerIndex) {
  Rng rng(5);
  nn::Network net = make_net(rng);
  const Tensor target = Tensor::randn(Shape{8}, rng, 1.0);
  const Tensor seed(Shape{6});
  EXPECT_THROW(concretize_activation(net, 9, target, seed), ContractViolation);
  // Layer 3 (full network) produces 2 features, not 8.
  EXPECT_THROW(concretize_activation(net, 3, target, seed), ContractViolation);
}

}  // namespace
}  // namespace dpv::train
