#!/usr/bin/env bash
# Documentation reference checker (the CI docs-check job).
#
# Two passes over the long-form docs:
#   1. every path-looking token (src/..., bench/..., tests/..., ...)
#      must exist in the tree;
#   2. a curated list of (directory, symbol) pairs the docs lean on must
#      still be found by grep, so renames surface as a red CI run
#      instead of silently stale prose.
#
# Run from the repository root: bash tools/check_docs.sh
set -u
cd "$(dirname "$0")/.." || exit 1

DOCS="README.md docs/ARCHITECTURE.md src/milp/README.md src/solver/README.md src/verify/README.md src/core/README.md src/train/README.md"
fail=0

for doc in $DOCS; do
  if [ ! -f "$doc" ]; then
    echo "FAIL: documented file missing: $doc"
    fail=1
    continue
  fi
  # Path-like references. Trailing punctuation from prose is stripped;
  # directory references may end in '/'; globs must match something.
  for ref in $(grep -oE '\b(src|bench|tests|tools|docs|examples)/[A-Za-z0-9_./*-]+' "$doc" | sed 's/[.,;:]$//' | sort -u); do
    case "$ref" in
      *\**)
        if ! compgen -G "$ref" >/dev/null; then
          echo "FAIL: $doc references glob with no matches: $ref"
          fail=1
        fi
        ;;
      *)
        if [ ! -e "$ref" ]; then
          echo "FAIL: $doc references missing path: $ref"
          fail=1
        fi
        ;;
    esac
  done
done

# (directory, symbol) pairs: the load-bearing names the docs explain.
check_symbol() {
  local where="$1" symbol="$2"
  if ! grep -rq -- "$symbol" "$where"; then
    echo "FAIL: symbol '$symbol' documented but not found under $where"
    fail=1
  fi
}

check_symbol src/solver  "row_of_basis"
check_symbol src/solver  "supports_tableau"
check_symbol src/solver  "LpBackendKind"
check_symbol src/solver  "capture_basis"
check_symbol src/solver  "basis_factorizations"
check_symbol src/solver  "singular_recoveries"
check_symbol src/solver  "factor_seconds"
check_symbol src/solver  "pivot_seconds"
check_symbol src/lp      "TableauRow"
check_symbol src/lp      "BasisLu"
check_symbol src/lp      "FactorizationKind"
check_symbol src/lp      "should_refactorize"
check_symbol src/lp      "ftran"
check_symbol src/lp      "btran"
check_symbol src/milp    "NodeStore"
check_symbol src/milp    "NodeStoreKind"
check_symbol src/milp    "BranchingRule"
check_symbol src/milp    "BranchingRuleKind"
check_symbol src/milp    "PseudocostTable"
check_symbol src/milp    "ParallelFrontier"
check_symbol src/milp    "steal_half"
check_symbol src/milp    "plunge_limit"
check_symbol src/milp    "pseudocost_reliability"
check_symbol src/milp    "bound_target"
check_symbol src/milp    "best_bound"
check_symbol src/solver  "nodes_stolen"
check_symbol src/solver  "steal_attempts"
check_symbol src/solver  "peak_open_nodes"
check_symbol src/solver  "best_bound_gap"
check_symbol src/absint  "leaky_relu"
check_symbol src/verify  "risk_margin_objective"
check_symbol src/verify  "default_verifier_milp_options"
check_symbol src/core    "reallocate_node_budget"
check_symbol src/milp    "remove_rows"
check_symbol src/milp    "root_age_limit"
check_symbol src/milp    "warm_root"
check_symbol src/milp    "cuts_aged_out"
check_symbol src/milp    "CutGenerator"
check_symbol src/milp    "ReluSplitCutGenerator"
check_symbol src/milp    "GomoryCutGenerator"
check_symbol src/milp    "run_root_cuts"
check_symbol src/milp    "ReluSplitInfo"
check_symbol src/milp    "CutOptions"
check_symbol src/milp    "add_rows"
check_symbol src/verify  "SharedTailEncoding"
check_symbol src/verify  "EncodingCache"
check_symbol src/verify  "BoundMethod"
check_symbol src/verify  "output_functional_range"
check_symbol src/core    "run_campaign"
check_symbol src/core    "WorkflowConfig"
check_symbol src/monitor "DiffMonitor"
check_symbol src/lp      "BasisUpdateKind"
check_symbol src/lp      "kForrestTomlin"
check_symbol src/lp      "kProductFormEta"
check_symbol src/lp      "refactor_cadence"
check_symbol src/lp      "PricingRule"
check_symbol src/lp      "kDevex"
check_symbol src/lp      "kDantzig"
check_symbol src/lp      "reuse_matching_basis"
check_symbol src/lp      "pricing_resets"
check_symbol src/lp      "incremental_reduced_costs"
check_symbol src/solver  "solve_children"
check_symbol src/solver  "ft_updates"
check_symbol src/solver  "eta_updates"
check_symbol src/solver  "sibling_batches"
check_symbol src/milp    "batch_sibling_solves"
check_symbol src/common  "force_scalar"
check_symbol src/common  "argmax_violation"
check_symbol src/common  "sparse_gather_dot"
check_symbol src/common  "max_square_scaled"
check_symbol src/common  "hadamard_fma"
check_symbol src/verify  "FalsifyOptions"
check_symbol src/verify  "falsify_query"
check_symbol src/verify  "prove_by_bounds"
check_symbol src/verify  "validate_witness"
check_symbol src/verify  "require_margin"
check_symbol src/verify  "DecisionStage"
check_symbol src/verify  "decided_by"
check_symbol src/verify  "frontier_activation"
check_symbol src/verify  "min_margin"
check_symbol src/verify  "validation_tolerance"
check_symbol src/milp    "frontier_values"
check_symbol src/core    "falsify_first"
check_symbol src/core    "concretize_witnesses"
check_symbol src/core    "counterexample_pool"
check_symbol src/core    "CounterexamplePool"
check_symbol src/core    "EscalationStep"
check_symbol src/core    "funnel_attack_falsified"
check_symbol src/core    "pool_points_contributed"
check_symbol src/core    "attack_seeds_tried"
check_symbol src/core    "input_witness_distance"
check_symbol src/train   "AttackConfig"
check_symbol src/train   "pgd_attack"
check_symbol src/train   "concretize_activation"
check_symbol src/nn      "input_gradient"
check_symbol src/absint  "zonotope_supported"
check_symbol src/core    "OperationalDomain"
check_symbol src/core    "CoverageMap"
check_symbol src/core    "CoverageReport"
check_symbol src/core    "run_coverage"
check_symbol src/core    "choose_split_dimension"
check_symbol src/core    "coverage_cell_seed"
check_symbol src/core    "run_parallel_pass"
check_symbol src/core    "verify_with_monitor"
check_symbol src/data    "ScenarioBox"
check_symbol src/data    "scenario_domain"
check_symbol src/data    "sample_scenario_in"
check_symbol src/data    "render_road_image_bounds"
check_symbol src/data    "RenderBoundsOptions"
check_symbol src/common  "RunControl"
check_symbol src/common  "run_expired"
check_symbol src/common  "set_poll_budget"
check_symbol src/common  "should_fire"
check_symbol src/common  "arm_from_spec"
check_symbol src/lp      "kDeadline"
check_symbol src/lp      "nonfinite_recoveries"
check_symbol src/milp    "deadline_expired"
check_symbol src/verify  "hit_deadline"
check_symbol src/verify  "time_budget_seconds"
check_symbol src/core    "ParallelPassError"
check_symbol src/core    "ConfigHasher"
check_symbol src/core    "CampaignEntryRecord"
check_symbol src/core    "save_campaign_checkpoint"
check_symbol src/core    "load_coverage_checkpoint"
check_symbol src/core    "checkpoint_path"
check_symbol src/core    "resume_entries_restored"
check_symbol src/core    "resume_rounds_restored"
check_symbol src/common  "RecordWriter"
check_symbol src/common  "RecordReader"
check_symbol src/nn      "diff_networks"
check_symbol src/absint  "perturbation_radii"
check_symbol src/verify  "versioned_cache_key"
check_symbol src/verify  "tail_bound_trace_key"
check_symbol src/verify  "DeltaArtifacts"
check_symbol src/verify  "plan_delta_reuse"
check_symbol src/verify  "delta_query_fingerprint"
check_symbol src/verify  "advance_artifacts"
check_symbol src/verify  "save_delta_artifacts"
check_symbol src/verify  "NamedPseudocost"
check_symbol src/verify  "refresh_query_bounds"
check_symbol src/verify  "abstraction_changed"
check_symbol src/milp    "initial_cuts"
check_symbol src/milp    "cuts_recycled"
check_symbol src/core    "delta_artifacts_out_path"
check_symbol src/core    "delta_entries_widened"

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
