#!/usr/bin/env python3
"""Compare a freshly generated bench JSON against its committed baseline
snapshot in bench/baselines/.

Five bench shapes are understood, dispatched on the file's "bench" field
(a missing or unrecognized kind is a hard error — never a silent
fallback to the wrong comparison):

  * the LP-core chain (BENCH_simplex.json, "bench": "e5_lp_core"):
    per-config pivot/node counters plus the headline speedup ratios,
  * the staged-pipeline funnel (BENCH_funnel.json, "bench": "e2_funnel"):
    per-config funnel counters (attack-falsified / zonotope-proved /
    milp-decided / unknown), the verdict-compatibility and
    witness-validation flags, and the battery speedup ratio, and
  * the scenario-coverage engine (BENCH_coverage.json, "bench":
    "coverage"): per-config cell/funnel counters, the cross-thread
    determinism flag, and the headline certified-volume fraction
    (floors: baseline - 5 points absolute, and the file's
    min_certified_fraction acceptance bar), and
  * the fault-tolerance axis (BENCH_resume.json, "bench": "resume"):
    per-config cell counters across clean / checkpointed / interrupted
    / resumed runs, the resume-fidelity flag (checkpointed and resumed
    tables bit-identical to the clean run), a salvage floor (the
    maximal-salvage resume must restore at least one completed round)
    and the checkpoint-overhead ceiling the file carries, and
  * delta re-certification (BENCH_delta.json, "bench": "delta"):
    per-config reuse/cut counters and verdict strings across retrain
    magnitudes, the cold-vs-delta verdict-compatibility flag, the
    artifact-reuse floor and the re-certification wall-fraction ceiling
    the file carries (both ratios, so the machine constant divides out).

CI machines are heterogeneous, so absolute wall-clock seconds are NOT
compared.  The contract is on machine-independent quantities: counters
(same nets, same seeds -> deterministic modulo algorithm changes) and
speedup *ratios*, which divide out the machine constant.

A drift beyond --tolerance (default 20%) on any of those fails the run,
as does a verdict-parity/compatibility break or a headline speedup below
--min-speedup (default 1.5x, the PR's acceptance bar; applied to the
widest-tail ratio for the LP chain and the battery ratio for the funnel).

Usage:
  tools/bench_compare.py build/BENCH_simplex.json \
      [--baseline bench/baselines/BENCH_simplex.json] \
      [--tolerance 0.20] [--min-speedup 1.5]
  tools/bench_compare.py build/BENCH_funnel.json \
      --baseline bench/baselines/BENCH_funnel.json
"""

import argparse
import json
import sys

# Counters whose relative drift vs the baseline is bounded by --tolerance.
# All are pivot-path quantities independent of the host's clock speed.
COUNTED = ("pivots", "nodes", "refactorizations", "updates")

# Ratio metrics: floor = ratio must stay >= (1 - tolerance) * baseline
# (faster than baseline is never a failure).
RATIO_KEYS = ("speedup_battery", "speedup_widest_tail")

# Funnel counters: who settled how many queries. Small deterministic
# integers, so drift is measured against max(baseline, 1).
FUNNEL_COUNTED = ("attack_falsified", "zonotope_proved", "milp_proved",
                  "milp_falsified", "unknown", "nodes")

# Coverage counters: refinement-tree shape and decision funnel per
# config. Small deterministic integers (same drift rule as the funnel).
COVERAGE_COUNTED = ("cells_total", "cells_certified", "cells_unsafe",
                    "cells_unknown", "max_depth", "nodes",
                    "scenario_falsified", "static_proved",
                    "attack_falsified", "zonotope_proved", "milp_proved",
                    "milp_falsified")

# Resume counters: refinement/round shape per run flavour. The chosen
# poll budget is deliberately NOT compared (the sweep steps x4, so any
# behavioural shift jumps it past every tolerance).
RESUME_COUNTED = ("cells_total", "cells_certified", "cells_unsafe",
                  "cells_unknown", "rounds", "rounds_restored", "nodes")

# Delta re-certification counters: how each retrain magnitude's entries
# partitioned by trace reuse, what the cut recycler kept/dropped, and
# the search-tree sizes. All deterministic for fixed seeds.
DELTA_COUNTED = ("entries_exact", "entries_widened", "entries_cold",
                 "cuts_recycled", "cuts_dropped", "bounds_refreshed",
                 "cold_nodes", "delta_nodes")


def fail(msg):
    print(f"bench_compare: FAIL: {msg}")
    return 1


def compare_funnel(cur, base, args):
    """Drift-check BENCH_funnel.json: funnel counters per config, the
    soundness flags, and the battery speedup ratio."""
    rc = 0

    if not cur.get("verdict_compatibility", False):
        rc |= fail("verdict_compatibility is false in the current run "
                   "(a decided verdict changed between falsify off and on)")
    if not cur.get("all_unsafe_validated", False):
        rc |= fail("all_unsafe_validated is false in the current run "
                   "(an UNSAFE verdict lacks a forward-pass-validated witness)")

    cur_cfgs = {c["config"]: c for c in cur.get("configs", [])}
    base_cfgs = {c["config"]: c for c in base.get("configs", [])}
    missing = sorted(set(base_cfgs) - set(cur_cfgs))
    if missing:
        rc |= fail(f"configs missing from current run: {', '.join(missing)}")

    for name, b in base_cfgs.items():
        c = cur_cfgs.get(name)
        if c is None:
            continue
        for key in FUNNEL_COUNTED:
            bv, cv = b.get(key, 0), c.get(key, 0)
            drift = abs(cv - bv) / max(bv, 1)
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(f"  {name:>14s} {key:>18s}: {bv:>6} -> {cv:>6} "
                  f"({drift:+.1%}) {status}")
            if drift > args.tolerance:
                rc |= fail(f"{name}: {key} drifted {drift:.1%} "
                           f"(> {args.tolerance:.0%})")

    bv = base.get("headline", {}).get("speedup_battery", 0.0)
    cv = cur.get("headline", {}).get("speedup_battery", 0.0)
    floor = (1.0 - args.tolerance) * bv
    print(f"  headline speedup_battery: baseline {bv:.2f}x -> current "
          f"{cv:.2f}x (floor {floor:.2f}x)")
    if bv > 0 and cv < floor:
        rc |= fail(f"headline speedup_battery regressed: {cv:.2f}x < floor "
                   f"{floor:.2f}x (baseline {bv:.2f}x)")
    if cv < args.min_speedup:
        rc |= fail(f"headline speedup_battery {cv:.2f}x is below the "
                   f"{args.min_speedup:.1f}x acceptance bar")

    if rc == 0:
        print("bench_compare: OK (funnel counters within "
              f"{args.tolerance:.0%} of baseline; battery speedup "
              f"{cv:.2f}x >= {args.min_speedup:.1f}x; verdicts compatible, "
              "all UNSAFE witnesses validated)")
    return rc


def compare_coverage(cur, base, args):
    """Drift-check BENCH_coverage.json: the determinism flag, per-config
    cell/funnel counters, and the headline certified-volume fraction."""
    rc = 0

    if not cur.get("determinism_ok", False):
        rc |= fail("determinism_ok is false in the current run "
                   "(coverage map/report differ across thread counts)")

    cur_cfgs = {c["config"]: c for c in cur.get("configs", [])}
    base_cfgs = {c["config"]: c for c in base.get("configs", [])}
    missing = sorted(set(base_cfgs) - set(cur_cfgs))
    if missing:
        rc |= fail(f"configs missing from current run: {', '.join(missing)}")

    for name, b in base_cfgs.items():
        c = cur_cfgs.get(name)
        if c is None:
            continue
        for key in COVERAGE_COUNTED:
            bv, cv = b.get(key, 0), c.get(key, 0)
            drift = abs(cv - bv) / max(bv, 1)
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(f"  {name:>14s} {key:>18s}: {bv:>6} -> {cv:>6} "
                  f"({drift:+.1%}) {status}")
            if drift > args.tolerance:
                rc |= fail(f"{name}: {key} drifted {drift:.1%} "
                           f"(> {args.tolerance:.0%})")

    # Certified volume: absolute floors, not ratios -- the fraction is
    # already normalized. Never fails for certifying MORE than baseline.
    bv = base.get("headline", {}).get("certified_fraction", 0.0)
    cv = cur.get("headline", {}).get("certified_fraction", 0.0)
    min_frac = cur.get("headline", {}).get("min_certified_fraction", 0.60)
    floor = bv - 0.05
    print(f"  headline certified_fraction: baseline {bv:.1%} -> current "
          f"{cv:.1%} (floor {floor:.1%}, acceptance bar {min_frac:.0%})")
    if cv < floor:
        rc |= fail(f"certified_fraction regressed: {cv:.1%} < baseline "
                   f"- 5 points ({floor:.1%})")
    if cv < min_frac:
        rc |= fail(f"certified_fraction {cv:.1%} is below the "
                   f"{min_frac:.0%} acceptance bar")

    if rc == 0:
        print("bench_compare: OK (coverage counters within "
              f"{args.tolerance:.0%} of baseline; certified volume "
              f"{cv:.1%} >= max(baseline - 5pts, {min_frac:.0%}); map "
              "bit-identical across thread counts)")
    return rc


def compare_resume(cur, base, args):
    """Drift-check BENCH_resume.json: the resume-fidelity flag, per-config
    cell/round counters, the salvage floor and the checkpoint-overhead
    ceiling."""
    rc = 0

    if not cur.get("determinism_ok", False):
        rc |= fail("determinism_ok is false in the current run (a "
                   "checkpointed or resumed table diverged from the clean "
                   "run's bytes)")

    cur_cfgs = {c["config"]: c for c in cur.get("configs", [])}
    base_cfgs = {c["config"]: c for c in base.get("configs", [])}
    missing = sorted(set(base_cfgs) - set(cur_cfgs))
    if missing:
        rc |= fail(f"configs missing from current run: {', '.join(missing)}")

    for name, b in base_cfgs.items():
        c = cur_cfgs.get(name)
        if c is None:
            continue
        for key in RESUME_COUNTED:
            bv, cv = b.get(key, 0), c.get(key, 0)
            drift = abs(cv - bv) / max(bv, 1)
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(f"  {name:>14s} {key:>18s}: {bv:>6} -> {cv:>6} "
                  f"({drift:+.1%}) {status}")
            if drift > args.tolerance:
                rc |= fail(f"{name}: {key} drifted {drift:.1%} "
                           f"(> {args.tolerance:.0%})")

    head = cur.get("headline", {})
    restored = head.get("rounds_restored", 0)
    total = head.get("total_rounds", 0)
    print(f"  headline rounds_restored: {restored} of {total}")
    if restored < 1:
        rc |= fail("maximal-salvage resume restored no completed rounds "
                   "(checkpoints are not saving settled work)")

    # Overhead is a wall-clock *fraction*, so the machine constant divides
    # out; the ceiling travels in the file like min_certified_fraction.
    overhead = head.get("checkpoint_overhead_fraction", 0.0)
    ceiling = head.get("max_checkpoint_overhead_fraction", 0.50)
    print(f"  headline checkpoint_overhead_fraction: {overhead:.2%} "
          f"(ceiling {ceiling:.0%})")
    if overhead > ceiling:
        rc |= fail(f"checkpoint overhead {overhead:.2%} exceeds the "
                   f"{ceiling:.0%} ceiling")

    if rc == 0:
        print("bench_compare: OK (resume counters within "
              f"{args.tolerance:.0%} of baseline; resume restored "
              f"{restored} round(s) and reproduced the clean tables; "
              f"checkpoint overhead {overhead:.2%} <= {ceiling:.0%})")
    return rc


def compare_delta(cur, base, args):
    """Drift-check BENCH_delta.json: cold-vs-delta verdict compatibility,
    per-config reuse/cut counters and verdict strings, the artifact-reuse
    floor and the re-certification wall-fraction ceiling."""
    rc = 0

    if not cur.get("verdict_compatibility", False):
        rc |= fail("verdict_compatibility is false in the current run "
                   "(a delta re-certification verdict diverged from the "
                   "cold run — an artifact reuse class is unsound)")

    cur_cfgs = {c["config"]: c for c in cur.get("configs", [])}
    base_cfgs = {c["config"]: c for c in base.get("configs", [])}
    missing = sorted(set(base_cfgs) - set(cur_cfgs))
    if missing:
        rc |= fail(f"configs missing from current run: {', '.join(missing)}")

    for name, b in base_cfgs.items():
        c = cur_cfgs.get(name)
        if c is None:
            continue
        for key in DELTA_COUNTED:
            bv, cv = b.get(key, 0), c.get(key, 0)
            drift = abs(cv - bv) / max(bv, 1)
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(f"  {name:>14s} {key:>18s}: {bv:>6} -> {cv:>6} "
                  f"({drift:+.1%}) {status}")
            if drift > args.tolerance:
                rc |= fail(f"{name}: {key} drifted {drift:.1%} "
                           f"(> {args.tolerance:.0%})")
        for key in ("cold_verdicts", "delta_verdicts"):
            bv, cv = b.get(key, ""), c.get(key, "")
            if bv != cv:
                rc |= fail(f"{name}: {key} changed: '{bv}' -> '{cv}'")

    head = cur.get("headline", {})

    # Reuse fraction: entries that got exact or widened trace reuse over
    # all entries. The floor travels in the file (like
    # min_certified_fraction); reusing MORE than baseline never fails.
    reuse = head.get("reuse_fraction", 0.0)
    reuse_floor = head.get("min_reuse_fraction", 1.0)
    print(f"  headline reuse_fraction: {reuse:.1%} (floor {reuse_floor:.0%})")
    if reuse < reuse_floor:
        rc |= fail(f"reuse_fraction {reuse:.1%} is below the "
                   f"{reuse_floor:.0%} floor (artifact reuse degraded)")

    # Wall fraction: delta wall over cold wall, summed across configs.
    # A ratio of walls on the same machine, so the machine constant
    # divides out; the ceiling is the PR's <= 25% acceptance bar.
    frac = head.get("wall_fraction", 1.0)
    ceiling = head.get("max_wall_fraction", 0.25)
    print(f"  headline wall_fraction: {frac:.1%} (ceiling {ceiling:.0%}, "
          f"re-certification speedup {head.get('speedup_recert', 0.0):.2f}x)")
    if frac > ceiling:
        rc |= fail(f"delta re-certification wall fraction {frac:.1%} "
                   f"exceeds the {ceiling:.0%} ceiling")

    if rc == 0:
        print("bench_compare: OK (delta counters and verdicts match "
              f"baseline within {args.tolerance:.0%}; reuse "
              f"{reuse:.1%} >= {reuse_floor:.0%}; re-certification wall "
              f"{frac:.1%} <= {ceiling:.0%} of cold; verdicts compatible)")
    return rc


def compare_lp_core(cur, base, args):
    """Drift-check BENCH_simplex.json: verdict parity, per-config
    pivot-path counters and the headline speedup ratios."""
    rc = 0

    if not cur.get("verdict_parity", False):
        rc |= fail("verdict_parity is false in the current run")

    cur_cfgs = {c["config"]: c for c in cur.get("configs", [])}
    base_cfgs = {c["config"]: c for c in base.get("configs", [])}
    missing = sorted(set(base_cfgs) - set(cur_cfgs))
    if missing:
        rc |= fail(f"configs missing from current run: {', '.join(missing)}")

    for name, b in base_cfgs.items():
        c = cur_cfgs.get(name)
        if c is None:
            continue
        for key in COUNTED:
            bv, cv = b.get(key, 0), c.get(key, 0)
            if bv == 0:
                if cv != 0:
                    rc |= fail(f"{name}: {key} was 0 in baseline, now {cv}")
                continue
            drift = abs(cv - bv) / bv
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(f"  {name:>14s} {key:>16s}: {bv:>8} -> {cv:>8} "
                  f"({drift:+.1%}) {status}")
            if drift > args.tolerance:
                rc |= fail(f"{name}: {key} drifted {drift:.1%} "
                           f"(> {args.tolerance:.0%})")

    cur_head = cur.get("headline", {})
    base_head = base.get("headline", {})
    for key in RATIO_KEYS:
        bv, cv = base_head.get(key, 0.0), cur_head.get(key, 0.0)
        floor = (1.0 - args.tolerance) * bv
        print(f"  headline {key}: baseline {bv:.2f}x -> current {cv:.2f}x "
              f"(floor {floor:.2f}x)")
        if bv > 0 and cv < floor:
            rc |= fail(f"headline {key} regressed: {cv:.2f}x < floor "
                       f"{floor:.2f}x (baseline {bv:.2f}x)")

    widest = cur_head.get("speedup_widest_tail", 0.0)
    if widest < args.min_speedup:
        rc |= fail(f"headline speedup_widest_tail {widest:.2f}x is below the "
                   f"{args.min_speedup:.1f}x acceptance bar")

    if rc == 0:
        print("bench_compare: OK (counters and speedup ratios within "
              f"{args.tolerance:.0%} of baseline; widest-tail "
              f"{widest:.2f}x >= {args.min_speedup:.1f}x)")
    return rc


# Dispatch table: the "bench" field of the current file names the
# comparison. No default — a missing or unknown kind must fail, not
# silently run the wrong comparison.
COMPARATORS = {
    "e5_lp_core": compare_lp_core,
    "e2_funnel": compare_funnel,
    "coverage": compare_coverage,
    "resume": compare_resume,
    "delta": compare_delta,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly generated bench JSON")
    ap.add_argument("--baseline", default="bench/baselines/BENCH_simplex.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative drift on counters and ratios")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="hard floor on the headline widest-tail speedup")
    args = ap.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    kind = cur.get("bench")
    known = ", ".join(sorted(COMPARATORS))
    if kind is None:
        return fail(f"{args.current} has no 'bench' kind field; "
                    f"expected one of: {known}")
    if kind not in COMPARATORS:
        return fail(f"{args.current} has unrecognized bench kind "
                    f"'{kind}'; expected one of: {known}")
    base_kind = base.get("bench")
    if base_kind != kind:
        return fail(f"bench kind mismatch: current is '{kind}' but "
                    f"baseline {args.baseline} is '{base_kind}' — "
                    "wrong --baseline file?")
    return COMPARATORS[kind](cur, base, args)


if __name__ == "__main__":
    sys.exit(main())
