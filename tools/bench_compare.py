#!/usr/bin/env python3
"""Compare a freshly generated BENCH_simplex.json against the committed
baseline snapshot in bench/baselines/BENCH_simplex.json.

CI machines are heterogeneous, so absolute wall-clock seconds are NOT
compared.  The contract is on machine-independent quantities:

  * per-config pivot and node counts (same nets, same seeds, same node
    budget -> deterministic modulo algorithm changes), and
  * the headline speedup *ratios* (pr5-baseline vs the shipped LP core),
    which divide out the machine constant.

A drift beyond --tolerance (default 20%) on any of those fails the run,
as does a verdict-parity break or a headline widest-tail speedup below
--min-speedup (default 1.5x, the PR's acceptance bar).

Usage:
  tools/bench_compare.py build/BENCH_simplex.json \
      [--baseline bench/baselines/BENCH_simplex.json] \
      [--tolerance 0.20] [--min-speedup 1.5]
"""

import argparse
import json
import sys

# Counters whose relative drift vs the baseline is bounded by --tolerance.
# All are pivot-path quantities independent of the host's clock speed.
COUNTED = ("pivots", "nodes", "refactorizations", "updates")

# Ratio metrics: floor = ratio must stay >= (1 - tolerance) * baseline
# (faster than baseline is never a failure).
RATIO_KEYS = ("speedup_battery", "speedup_widest_tail")


def fail(msg):
    print(f"bench_compare: FAIL: {msg}")
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly generated BENCH_simplex.json")
    ap.add_argument("--baseline", default="bench/baselines/BENCH_simplex.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative drift on counters and ratios")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="hard floor on the headline widest-tail speedup")
    args = ap.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    rc = 0

    if not cur.get("verdict_parity", False):
        rc |= fail("verdict_parity is false in the current run")

    cur_cfgs = {c["config"]: c for c in cur.get("configs", [])}
    base_cfgs = {c["config"]: c for c in base.get("configs", [])}
    missing = sorted(set(base_cfgs) - set(cur_cfgs))
    if missing:
        rc |= fail(f"configs missing from current run: {', '.join(missing)}")

    for name, b in base_cfgs.items():
        c = cur_cfgs.get(name)
        if c is None:
            continue
        for key in COUNTED:
            bv, cv = b.get(key, 0), c.get(key, 0)
            if bv == 0:
                if cv != 0:
                    rc |= fail(f"{name}: {key} was 0 in baseline, now {cv}")
                continue
            drift = abs(cv - bv) / bv
            status = "ok" if drift <= args.tolerance else "DRIFT"
            print(f"  {name:>14s} {key:>16s}: {bv:>8} -> {cv:>8} "
                  f"({drift:+.1%}) {status}")
            if drift > args.tolerance:
                rc |= fail(f"{name}: {key} drifted {drift:.1%} "
                           f"(> {args.tolerance:.0%})")

    cur_head = cur.get("headline", {})
    base_head = base.get("headline", {})
    for key in RATIO_KEYS:
        bv, cv = base_head.get(key, 0.0), cur_head.get(key, 0.0)
        floor = (1.0 - args.tolerance) * bv
        print(f"  headline {key}: baseline {bv:.2f}x -> current {cv:.2f}x "
              f"(floor {floor:.2f}x)")
        if bv > 0 and cv < floor:
            rc |= fail(f"headline {key} regressed: {cv:.2f}x < floor "
                       f"{floor:.2f}x (baseline {bv:.2f}x)")

    widest = cur_head.get("speedup_widest_tail", 0.0)
    if widest < args.min_speedup:
        rc |= fail(f"headline speedup_widest_tail {widest:.2f}x is below the "
                   f"{args.min_speedup:.1f}x acceptance bar")

    if rc == 0:
        print("bench_compare: OK (counters and speedup ratios within "
              f"{args.tolerance:.0%} of baseline; widest-tail "
              f"{widest:.2f}x >= {args.min_speedup:.1f}x)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
